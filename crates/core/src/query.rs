//! The sweep-native query API: plan a whole grid of analyses, execute it once.
//!
//! The paper's deliverable is not a single number but *tables and curves*:
//! safety/liveness swept over cluster size N, per-node failure probability p, quorum
//! configuration, protocol, and correlation structure. The per-cell front door
//! ([`crate::analyzer::analyze_auto`]) answers exactly one (model, scenario, budget)
//! triple per call, so every sweep used to be a hand-rolled loop that re-selected
//! the engine, re-derived packed-kernel thresholds and re-ran the rare-event
//! selector pilot for every cell. This module is the batch-oriented replacement:
//!
//! * [`Query`] — a builder capturing scenario axes as sweeps ([`Query::nodes`],
//!   [`Query::fault_probs`] — see [`logspace`] — [`Query::protocols`],
//!   [`Query::correlations`], [`Query::samples_sweep`]), a [`Budget`], the requested
//!   [`Metrics`], and fully explicit cells ([`Query::cell`]) for scenarios the grid
//!   axes cannot express.
//! * [`AnalysisSession`] — owns the engine registry walk, the (optional, pinned)
//!   rayon pool, and per-(model, scenario) reusable scratch: the converted
//!   correlation model, compiled packed-kernel thresholds/LUTs, selector-pilot
//!   estimates and importance-sampling proposals, all keyed by cell signature and
//!   reused across cells, plans and queries.
//! * [`AnalysisSession::plan`] → [`QueryPlan`] — engine selection for *all* cells up
//!   front (validating the budget — see [`Budget::validate`] — and the cell shapes),
//!   grouping cells that share a (model, scenario) signature so the expensive
//!   per-group setup runs once per group instead of once per cell.
//! * [`QueryPlan::execute`] → [`AnalysisReport`] — runs every cell across the
//!   persistent pool and returns one [`CellRecord`] per cell (engine, kernel,
//!   estimates with confidence intervals, ESS, wall time), renderable to a
//!   plain-text [`Table`] and to JSON ([`AnalysisReport::to_json`], via
//!   [`crate::json`] — no serde in the vendored world).
//! * **Time domain** — [`Query::time_horizon`] attaches a [`TimeAxis`];
//!   [`Query::trajectory_cell`] (aging fleets through sliding mission windows) and
//!   [`Query::repairable_cell`] (λ/μ repairable groups via
//!   [`fault_model::markov::RepairableGroup`]) produce [`TrajectoryRecord`]s —
//!   reliability over time, first dip below target, steady-state availability,
//!   unavailability minutes per year — rendered through the same table
//!   ([`AnalysisReport::to_trajectory_table`]) and JSON paths.
//! * **Cross-validation** — [`Query::validate_with_simulation`] pairs every
//!   executable cell with an empirical run of the fifth engine
//!   ([`crate::simulation::SimulationEngine`]); the cell's [`ValidationRecord`]
//!   reports the trial frequencies and the analytic-vs-empirical z-score.
//!
//! # Determinism contract
//!
//! Executing a planned cell is **bit-identical** to calling `analyze_auto` /
//! [`crate::analyzer::analyze_scenario`] on the same triple: both run the same
//! engine-selection rule and the same chunked `(seed, cell, chunk)` sampling code —
//! the per-cell front doors are thin wrappers over a single-cell plan. Caching never
//! changes results, because everything cached is a pure function of the cell
//! signature: the correlation-model conversion and kernel compilation are
//! value-deterministic, and the selector pilot / adaptive proposal are cached *per
//! seed*, so a cache hit returns exactly what the per-cell call would have
//! recomputed. Cells execute in parallel, but each cell's sampling is chunked by the
//! thread-count-independent scheme of [`crate::montecarlo`], so reports are
//! bit-identical at any thread count. `tests/engine_agreement.rs` pins this
//! plan-vs-loop equivalence over a ≥100-cell grid at several thread counts.
//!
//! # Example
//!
//! ```
//! use prob_consensus::query::{AnalysisSession, ProtocolSpec, Query};
//!
//! let session = AnalysisSession::new();
//! let query = Query::new()
//!     .protocols([ProtocolSpec::Raft])
//!     .nodes([3usize, 5, 7, 9])
//!     .fault_probs([0.01, 0.08]);
//! let report = session.run(&query).expect("well-formed query");
//! assert_eq!(report.cells().len(), 8);
//! // Raft at N = 3, p = 1%: the paper's 99.97% cell, via the exact counting engine.
//! assert!(report.cells()[0].outcome.is_exact());
//! assert_eq!(
//!     report.cells()[0].outcome.report.safe_and_live.as_percent(),
//!     "99.97%"
//! );
//! println!("{}", report.to_table("Raft sweep"));
//! let json = report.to_json();
//! assert!(json.contains("\"engine\": \"counting\""));
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use fault_model::correlation::{CorrelationGroup, CorrelationModel};
use fault_model::markov::RepairableGroup;
use fault_model::metrics::{Nines, HOURS_PER_YEAR};
use fault_model::node::Fleet;

use crate::analyzer::{AnalysisError, ReliabilityReport};
use crate::cache::{CacheKey, CacheStats, SessionCache};
use crate::deployment::Deployment;
use crate::engine::{
    AnalysisEngine, AnalysisOutcome, Budget, CountingEngine, EngineChoice, EnumerationEngine,
    FaultEnvironment, Scenario,
};
use crate::enumeration::RawReliability;
use crate::epistemic::{EpistemicDraw, EpistemicReport};
use crate::json::JsonValue;
use crate::montecarlo::{
    chunk_count, chunk_len, chunk_seed, report_from_counts, sample_chunk, HitCounts, McKernel, Z_95,
};
use crate::packed::PackedKernel;
use crate::pbft_model::PbftModel;
use crate::protocol::ProtocolModel;
use crate::raft_model::RaftModel;
use crate::rare_event::Proposal;
use crate::report::Table;
use crate::simulation::{SimulationEngine, SimulationReport};
use crate::timevarying;

/// A protocol family the grid axes can instantiate at any swept cluster size.
///
/// Scenarios that need a hand-built model (placement-sensitive durability models,
/// heterogeneous quorum policies) go through [`Query::cell`] instead, which accepts
/// any [`ProtocolModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolSpec {
    /// Raft with majority quorums ([`RaftModel::standard`]).
    Raft,
    /// Raft with explicit flexible quorum sizes ([`RaftModel::flexible`]).
    RaftFlexible {
        /// Persistence (log replication) quorum size.
        q_per: usize,
        /// View-change (leader election) quorum size.
        q_vc: usize,
    },
    /// PBFT with the standard 2f+1 quorums ([`PbftModel::standard`]).
    Pbft,
}

impl ProtocolSpec {
    /// Instantiates the protocol model at cluster size `n`.
    ///
    /// # Panics
    ///
    /// Panics when the underlying constructor rejects `n` (e.g. flexible quorums
    /// larger than the cluster).
    pub fn build(&self, n: usize) -> Arc<dyn ProtocolModel + Send + Sync> {
        match self {
            ProtocolSpec::Raft => Arc::new(RaftModel::standard(n)),
            ProtocolSpec::RaftFlexible { q_per, q_vc } => {
                Arc::new(RaftModel::flexible(n, *q_per, *q_vc))
            }
            ProtocolSpec::Pbft => Arc::new(PbftModel::standard(n)),
        }
    }

    /// Short label used in cell names and report columns.
    pub fn label(&self) -> String {
        match self {
            ProtocolSpec::Raft => "raft".into(),
            ProtocolSpec::RaftFlexible { q_per, q_vc } => format!("raft-flex({q_per},{q_vc})"),
            ProtocolSpec::Pbft => "pbft".into(),
        }
    }
}

/// How the swept per-node failure probability `p` maps onto fault modes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAxis {
    /// Crash faults only: `p` is the crash probability
    /// ([`Deployment::uniform_crash`]).
    Crash,
    /// Byzantine faults only: `p` is the Byzantine probability
    /// ([`Deployment::uniform_byzantine`]).
    Byzantine,
    /// Mixed: `p` is the crash probability, with a fixed Byzantine probability on
    /// top ([`Deployment::uniform_mixed`]).
    Mixed {
        /// Per-node Byzantine probability, constant across the `p` sweep.
        byzantine: f64,
    },
}

impl FaultAxis {
    fn deployment(&self, n: usize, p: f64) -> Deployment {
        match self {
            FaultAxis::Crash => Deployment::uniform_crash(n, p),
            FaultAxis::Byzantine => Deployment::uniform_byzantine(n, p),
            FaultAxis::Mixed { byzantine } => Deployment::uniform_mixed(n, p, *byzantine),
        }
    }

    fn key(&self) -> (u8, u64) {
        match self {
            FaultAxis::Crash => (0, 0),
            FaultAxis::Byzantine => (1, 0),
            FaultAxis::Mixed { byzantine } => (2, byzantine.to_bits()),
        }
    }
}

/// A correlation structure applied on top of the independent per-node profiles —
/// the §2(3) axis of a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CorrelationSpec {
    /// No correlation groups: the plain independent deployment.
    Independent,
    /// One crash shock covering the whole cluster with the given probability.
    ClusterShock {
        /// Probability the whole-cluster shock fires within the window.
        probability: f64,
    },
    /// The cluster split into `racks` contiguous, near-equal groups, each with an
    /// independent crash shock of the given probability. A rack count of zero is
    /// treated as one rack; racks beyond the node count end up empty and are
    /// dropped.
    RackShock {
        /// Number of contiguous racks.
        racks: usize,
        /// Probability each rack's shock fires within the window.
        probability: f64,
    },
}

impl CorrelationSpec {
    fn apply(&self, deployment: Deployment) -> ScenarioSpec {
        match self {
            CorrelationSpec::Independent => ScenarioSpec::Independent(deployment),
            CorrelationSpec::ClusterShock { probability } => {
                let n = deployment.len();
                ScenarioSpec::Correlated(
                    CorrelationModel::independent(deployment.profiles().to_vec()).with_group(
                        CorrelationGroup::crash_shock((0..n).collect(), *probability),
                    ),
                )
            }
            CorrelationSpec::RackShock { racks, probability } => {
                let n = deployment.len();
                let racks = (*racks).max(1);
                let per_rack = n.div_ceil(racks);
                let mut model = CorrelationModel::independent(deployment.profiles().to_vec());
                for r in 0..racks {
                    let members: Vec<usize> = (r * per_rack..((r + 1) * per_rack).min(n)).collect();
                    if members.is_empty() {
                        break;
                    }
                    model = model.with_group(CorrelationGroup::crash_shock(members, *probability));
                }
                ScenarioSpec::Correlated(model)
            }
        }
    }

    /// Short label used in cell names and report columns.
    pub fn label(&self) -> String {
        match self {
            CorrelationSpec::Independent => "independent".into(),
            CorrelationSpec::ClusterShock { probability } => {
                format!("cluster-shock({probability})")
            }
            CorrelationSpec::RackShock { racks, probability } => {
                format!("rack-shock({racks},{probability})")
            }
        }
    }

    fn key(&self) -> (u8, usize, u64) {
        match self {
            CorrelationSpec::Independent => (0, 0, 0),
            CorrelationSpec::ClusterShock { probability } => (1, 0, probability.to_bits()),
            CorrelationSpec::RackShock { racks, probability } => (2, *racks, probability.to_bits()),
        }
    }
}

/// `count` points spaced evenly on a log scale from `lo` to `hi` inclusive — the
/// natural fault-probability axis for paper-style sweeps
/// (`fault_probs(logspace(1e-6, 1e-1, 25))`).
///
/// # Panics
///
/// Panics unless `0 < lo <= hi` and `count >= 1` (`count == 1` yields just `lo`).
pub fn logspace(lo: f64, hi: f64, count: usize) -> Vec<f64> {
    assert!(
        lo > 0.0 && hi >= lo && lo.is_finite() && hi.is_finite(),
        "logspace needs 0 < lo <= hi, got [{lo}, {hi}]"
    );
    assert!(count >= 1, "logspace needs at least one point");
    if count == 1 {
        return vec![lo];
    }
    let (llo, lhi) = (lo.ln(), hi.ln());
    (0..count)
        .map(|i| (llo + (lhi - llo) * i as f64 / (count - 1) as f64).exp())
        .collect()
}

/// Which of the three guarantees a report renders (all by default). The analysis
/// always computes all three — they fall out of the same pass — so this only
/// selects columns in [`AnalysisReport::to_table`] / [`AnalysisReport::to_json`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Metrics {
    /// Render the safety guarantee.
    pub safe: bool,
    /// Render the liveness guarantee.
    pub live: bool,
    /// Render the combined guarantee.
    pub safe_and_live: bool,
}

impl Default for Metrics {
    fn default() -> Self {
        Self {
            safe: true,
            live: true,
            safe_and_live: true,
        }
    }
}

impl Metrics {
    /// The enabled metrics in rendering order.
    fn enabled_kinds(&self) -> Vec<MetricKind> {
        let mut kinds = Vec::new();
        if self.safe {
            kinds.push(MetricKind::Safe);
        }
        if self.live {
            kinds.push(MetricKind::Live);
        }
        if self.safe_and_live {
            kinds.push(MetricKind::SafeAndLive);
        }
        kinds
    }
}

/// The time axis of a trajectory query: how far ahead to look, how often to
/// sample, and (for fleet cells) how wide each sampled mission window is.
///
/// Attached to a query with [`Query::time_horizon`]; consumed by
/// [`Query::trajectory_cell`] (guarantee of an aging fleet per window) and
/// [`Query::repairable_cell`] (first-passage reliability of a repairable group).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeAxis {
    /// How far ahead (hours from now) the trajectory extends.
    pub horizon_hours: f64,
    /// Spacing between trajectory samples, in hours.
    pub step_hours: f64,
    /// Width of the sliding mission window evaluated at each sample (fleet cells
    /// only; defaults to the step).
    pub window_hours: f64,
    /// Optional reliability target in nines; when set, records report the first
    /// sample time at which the guarantee drops below it.
    pub target_nines: Option<f64>,
}

impl TimeAxis {
    /// A time axis sampling every `step_hours` out to `horizon_hours`, with the
    /// mission window defaulting to one step.
    ///
    /// # Panics
    ///
    /// Panics unless `horizon_hours >= 0` and `step_hours > 0` (both finite).
    pub fn new(horizon_hours: f64, step_hours: f64) -> Self {
        assert!(
            horizon_hours >= 0.0 && horizon_hours.is_finite(),
            "horizon must be finite and non-negative, got {horizon_hours}"
        );
        assert!(
            step_hours > 0.0 && step_hours.is_finite(),
            "step must be finite and positive, got {step_hours}"
        );
        Self {
            horizon_hours,
            step_hours,
            window_hours: step_hours,
            target_nines: None,
        }
    }

    /// Overrides the sliding mission-window width (fleet cells).
    ///
    /// # Panics
    ///
    /// Panics unless `window_hours > 0` and finite.
    pub fn with_window(mut self, window_hours: f64) -> Self {
        assert!(
            window_hours > 0.0 && window_hours.is_finite(),
            "window must be finite and positive, got {window_hours}"
        );
        self.window_hours = window_hours;
        self
    }

    /// Sets the reliability target (in nines) that trajectory records check their
    /// points against.
    pub fn with_target_nines(mut self, nines: f64) -> Self {
        assert!(
            nines >= 0.0,
            "target nines must be non-negative, got {nines}"
        );
        self.target_nines = Some(nines);
        self
    }

    /// The sample times of this axis: `0, step, 2·step, …` up to and including the
    /// horizon.
    ///
    /// Times are computed as `i · step` (never by accumulating `t += step`), so
    /// floating-point drift cannot silently drop the horizon sample: a horizon
    /// that is a whole number of steps — within a relative ulp, e.g.
    /// `horizon = 0.3, step = 0.1` — always yields its final sample.
    pub fn sample_times(&self) -> Vec<f64> {
        let steps = (self.horizon_hours / self.step_hours * (1.0 + 1e-12)).floor() as usize;
        (0..=steps).map(|i| i as f64 * self.step_hours).collect()
    }

    /// Checks the axis invariants — the plan-time guard for axes built with
    /// struct-literal syntax, whose `pub` fields bypass the constructor asserts
    /// (a non-positive step would make [`TimeAxis::sample_times`] unbounded).
    fn validate(&self) -> Result<(), AnalysisError> {
        let valid = self.horizon_hours >= 0.0
            && self.horizon_hours.is_finite()
            && self.step_hours > 0.0
            && self.step_hours.is_finite()
            && self.window_hours > 0.0
            && self.window_hours.is_finite()
            && self.target_nines.is_none_or(|n| n >= 0.0 && n.is_finite());
        if valid {
            Ok(())
        } else {
            Err(AnalysisError::InvalidTimeAxis)
        }
    }
}

impl Default for TimeAxis {
    /// Five years ahead, sampled quarterly, quarter-wide mission windows — the
    /// cadence of the paper's aging-fleet walkthrough.
    fn default() -> Self {
        Self::new(5.0 * HOURS_PER_YEAR, HOURS_PER_YEAR / 4.0)
    }
}

/// Which kind of time-domain cell produced a [`TrajectoryRecord`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrajectoryKind {
    /// An aging fleet swept through sliding mission windows
    /// ([`Query::trajectory_cell`], backed by
    /// [`crate::timevarying::reliability_trajectory`]).
    Fleet,
    /// A repairable group analysed as a continuous-time Markov chain
    /// ([`Query::repairable_cell`], backed by
    /// [`fault_model::markov::RepairableGroup`]).
    Repairable,
}

impl TrajectoryKind {
    /// Short label used in report columns ("fleet" / "repairable").
    pub fn label(&self) -> &'static str {
        match self {
            TrajectoryKind::Fleet => "fleet",
            TrajectoryKind::Repairable => "repairable",
        }
    }
}

/// One sample of a trajectory: the guarantee at one point in time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryPoint {
    /// Hours from now.
    pub at_hours: f64,
    /// The guarantee at that time: safe-and-live probability over the mission
    /// window (fleet cells) or first-passage reliability `R(t)` (repairable cells).
    pub probability: f64,
}

/// One executed time-domain cell: the guarantee as a function of time, with the
/// derived operator metrics (first dip below target, steady-state availability,
/// mean time to threshold, unavailability minutes per year).
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryRecord {
    /// Cell label, as given to [`Query::trajectory_cell`] /
    /// [`Query::repairable_cell`].
    pub label: String,
    /// Which kind of time-domain model produced the record.
    pub kind: TrajectoryKind,
    /// The trajectory samples, in time order starting at `t = 0`.
    pub points: Vec<TrajectoryPoint>,
    /// The target (in nines) the points were checked against, if one was set on
    /// the [`TimeAxis`].
    pub target_nines: Option<f64>,
    /// First sample time (hours from now) at which the guarantee was below the
    /// target — `Some(0.0)` when it already starts there, `None` when the target
    /// held at every sample (or no target was set).
    pub first_below_target_hours: Option<f64>,
    /// The lowest probability along the trajectory.
    pub worst_probability: f64,
    /// The sample time at which that minimum occurs.
    pub worst_at_hours: f64,
    /// Long-run probability that the quorum is available (repairable cells only).
    pub steady_state_availability: Option<f64>,
    /// Mean time (hours) until more than the tolerated number of nodes are down
    /// simultaneously — the MTTDL analogue (repairable cells only; may be
    /// infinite when the threshold is unreachable).
    pub mean_time_to_threshold_hours: Option<f64>,
    /// Long-run expected unavailability in minutes per year (repairable cells
    /// only).
    pub unavailability_minutes_per_year: Option<f64>,
}

impl TrajectoryRecord {
    /// This one trajectory as a JSON value — exactly the element
    /// [`AnalysisReport::to_json_value`] puts in its `trajectories` array for
    /// this record (the report path delegates here), so streamed trajectories
    /// reassemble byte-identically into the one-shot report.
    pub fn to_json_value(&self) -> JsonValue {
        let points = self
            .points
            .iter()
            .map(|p| {
                JsonValue::Object(vec![
                    ("at_hours".to_string(), JsonValue::number(p.at_hours)),
                    ("probability".to_string(), JsonValue::number(p.probability)),
                ])
            })
            .collect();
        JsonValue::Object(vec![
            ("label".to_string(), JsonValue::string(&self.label)),
            ("kind".to_string(), JsonValue::string(self.kind.label())),
            ("points".to_string(), JsonValue::Array(points)),
            (
                "target_nines".to_string(),
                JsonValue::optional(self.target_nines),
            ),
            (
                "first_below_target_hours".to_string(),
                JsonValue::optional(self.first_below_target_hours),
            ),
            (
                "worst_probability".to_string(),
                JsonValue::number(self.worst_probability),
            ),
            (
                "worst_at_hours".to_string(),
                JsonValue::number(self.worst_at_hours),
            ),
            (
                "steady_state_availability".to_string(),
                JsonValue::optional(self.steady_state_availability),
            ),
            (
                "mean_time_to_threshold_hours".to_string(),
                JsonValue::optional(self.mean_time_to_threshold_hours),
            ),
            (
                "unavailability_minutes_per_year".to_string(),
                JsonValue::optional(self.unavailability_minutes_per_year),
            ),
        ])
    }

    /// This one trajectory as a single compact JSON line (no trailing newline) —
    /// the NDJSON streaming path, like [`CellRecord::to_json_line`].
    pub fn to_json_line(&self) -> String {
        self.to_json_value().to_compact_string()
    }
}

/// The z-score threshold past which a validated cell is flagged as a
/// first-class divergence finding ([`Divergence`]): |z| above this means the
/// empirical rate is not a sampling fluctuation around the analytic prediction
/// but a modelling gap the analytic engines cannot see — the query API's version
/// of the paper's "real life is uncertain" check.
pub const DIVERGENCE_Z: f64 = 3.0;

/// Which side of the analytic prediction the empirical measurement landed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceDirection {
    /// The system measured *worse* than the model predicts — the dangerous
    /// direction: the analytic guarantee overpromises (e.g. a gray primary
    /// stalls liveness while the fault model, which only knows crash/Byzantine
    /// booleans, reports the cluster fully healthy).
    EmpiricalBelow,
    /// The system measured *better* than the model predicts — the conservative
    /// direction (e.g. the analytic mission-window semantics count a fault the
    /// executable cluster had time to ride out).
    EmpiricalAbove,
}

impl DivergenceDirection {
    /// Short label used in tables and JSON: `"below"` / `"above"`.
    pub fn label(self) -> &'static str {
        match self {
            DivergenceDirection::EmpiricalBelow => "below",
            DivergenceDirection::EmpiricalAbove => "above",
        }
    }
}

impl std::fmt::Display for DivergenceDirection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A flagged analytic-vs-empirical divergence: the empirical safe-and-live
/// frequency landed more than [`DIVERGENCE_Z`] standard errors from the analytic
/// prediction. Surfaced as a first-class finding — direction and magnitude in
/// the table, a structured object in JSON, enumerable via
/// [`AnalysisReport::divergent_cells`] — never hidden in a raw z column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Divergence {
    /// Which side of the prediction the measurement landed on.
    pub direction: DivergenceDirection,
    /// Absolute gap between the empirical frequency and the analytic
    /// probability, in probability units (not standard errors).
    pub magnitude: f64,
}

impl Divergence {
    /// The gap as a signed value: negative when the system measured worse than
    /// the model predicts.
    pub fn signed_gap(&self) -> f64 {
        match self.direction {
            DivergenceDirection::EmpiricalBelow => -self.magnitude,
            DivergenceDirection::EmpiricalAbove => self.magnitude,
        }
    }
}

/// One paired analytic-vs-empirical check: the simulation run requested by
/// [`Query::validate_with_simulation`] next to the cell's analytic prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationRecord {
    /// The empirical trial frequencies and trace statistics.
    pub simulation: SimulationReport,
    /// The analytic safe-and-live probability the simulation is checked against.
    pub analytic: f64,
    /// Standardized disagreement: `(empirical − analytic) / SE`, with the
    /// standard error taken from the empirical Wilson interval. |z| ≲ 2 means the
    /// simulation is consistent with the analytic prediction at the trial budget;
    /// persistent |z| > 3 flags a modelling (or implementation) gap.
    pub z_score: f64,
    /// The fault environment the paired simulation ran under (the cell budget's
    /// [`crate::engine::SimBudget::environment`]).
    pub environment: FaultEnvironment,
    /// The structured divergence finding, present iff |z| > [`DIVERGENCE_Z`].
    pub divergence: Option<Divergence>,
}

impl ValidationRecord {
    /// Whether the empirical rate is within `sigmas` standard errors of the
    /// analytic prediction.
    pub fn agrees_within(&self, sigmas: f64) -> bool {
        self.z_score.abs() <= sigmas
    }
}

/// What one cell runs against: the two [`Scenario`] shapes, owned.
#[derive(Debug, Clone)]
enum ScenarioSpec {
    Independent(Deployment),
    Correlated(CorrelationModel),
}

impl ScenarioSpec {
    fn as_scenario(&self) -> Scenario<'_> {
        match self {
            ScenarioSpec::Independent(d) => Scenario::Independent(d),
            ScenarioSpec::Correlated(c) => Scenario::Correlated(c),
        }
    }

    /// The scenario with every fault profile rescaled by `factor` — the
    /// per-draw transform of the epistemic mode. Crash/Byzantine structure and
    /// the `[0, 1]` clamps come from [`fault_model::mode::FaultProfile::scaled`];
    /// correlation-group shock probabilities are deliberately untouched (the
    /// posterior models per-node telemetry, not common-cause shocks).
    fn scaled(&self, factor: f64) -> ScenarioSpec {
        let scale = |profiles: &[fault_model::mode::FaultProfile]| {
            profiles
                .iter()
                .map(|p| p.scaled(factor))
                .collect::<Vec<_>>()
        };
        match self {
            ScenarioSpec::Independent(d) => {
                ScenarioSpec::Independent(Deployment::from_profiles(scale(d.profiles())))
            }
            ScenarioSpec::Correlated(c) => {
                let mut model = CorrelationModel::independent(scale(c.profiles()));
                for group in c.groups() {
                    model = model.with_group(group.clone());
                }
                ScenarioSpec::Correlated(model)
            }
        }
    }
}

/// One fully explicit cell (model + scenario) appended after the grid.
#[derive(Clone)]
struct ExplicitCell {
    label: String,
    model: Arc<dyn ProtocolModel + Send + Sync>,
    scenario: ScenarioSpec,
    /// Per-cell budget override (validated at plan time like the base budget).
    /// `None` — the common case — inherits the query budget. The optimizer
    /// ([`crate::optimize`]) uses overrides to give every candidate its own
    /// salted seed and per-tier sample budget inside one scheduled plan.
    budget: Option<Budget>,
    /// Whether this cell's scratch lives in the optimizer cache namespace
    /// ([`OPTIMIZER_KEY_TAG`] prefixed onto the content key) instead of the
    /// plain explicit-cell namespace.
    optimizer: bool,
}

/// One time-domain cell: a fleet swept through mission windows, or a repairable
/// group analysed as a Markov chain.
#[derive(Clone)]
enum TrajectorySpec {
    Fleet {
        label: String,
        model: Arc<dyn ProtocolModel + Send + Sync>,
        fleet: Fleet,
    },
    Repairable {
        label: String,
        group: RepairableGroup,
    },
}

/// A batch analysis request: grid axes whose cartesian product forms the sweep,
/// plus explicit cells, time-domain cells, a budget and the requested metrics. See
/// the module docs for the full lifecycle.
///
/// Grid cells are emitted in axis-nesting order: protocols, then nodes, then fault
/// probabilities, then correlation variants, then sample budgets — with explicit
/// cells appended last, in insertion order. [`AnalysisReport::cells`] preserves this
/// order, so callers can index cells arithmetically when rebuilding a table.
///
/// # Examples
///
/// A steady-state sweep next to a time-domain repairable-fleet cell:
///
/// ```
/// use fault_model::markov::RepairableGroup;
/// use prob_consensus::query::{AnalysisSession, ProtocolSpec, Query, TimeAxis};
///
/// let query = Query::new()
///     .protocols([ProtocolSpec::Raft])
///     .nodes([3usize, 5])
///     .fault_probs([0.01])
///     .time_horizon(TimeAxis::new(20_000.0, 5_000.0).with_target_nines(3.0))
///     // 5 nodes, λ = 1e-4/h, repaired in ~10h, majority quorum tolerates 2 down.
///     .repairable_cell("repairable-5", RepairableGroup::new(5, 1e-4, 0.1, 2));
/// assert_eq!(query.cell_count(), 2);
/// assert_eq!(query.trajectory_count(), 1);
///
/// let report = AnalysisSession::new().run(&query).expect("well-formed query");
/// let record = report.trajectory(0);
/// assert_eq!(record.points.len(), 5); // t = 0, 5k, 10k, 15k, 20k hours
/// assert_eq!(record.points[0].probability, 1.0);
/// assert!(record.steady_state_availability.unwrap() > 0.999_999);
/// ```
#[derive(Clone)]
pub struct Query {
    protocols: Vec<ProtocolSpec>,
    nodes: Vec<usize>,
    fault_probs: Vec<f64>,
    fault_axis: FaultAxis,
    correlations: Vec<CorrelationSpec>,
    sample_budgets: Vec<usize>,
    environments: Vec<FaultEnvironment>,
    budget: Budget,
    metrics: Metrics,
    explicit: Vec<ExplicitCell>,
    time_axis: Option<TimeAxis>,
    trajectories: Vec<TrajectorySpec>,
    validation: bool,
}

impl Default for Query {
    fn default() -> Self {
        Self::new()
    }
}

impl Query {
    /// An empty query: no grid axes, no explicit cells, default budget, crash
    /// faults, independent correlation, all metrics.
    pub fn new() -> Self {
        Self {
            protocols: Vec::new(),
            nodes: Vec::new(),
            fault_probs: Vec::new(),
            fault_axis: FaultAxis::Crash,
            correlations: vec![CorrelationSpec::Independent],
            sample_budgets: Vec::new(),
            environments: Vec::new(),
            budget: Budget::default(),
            metrics: Metrics::default(),
            explicit: Vec::new(),
            time_axis: None,
            trajectories: Vec::new(),
            validation: false,
        }
    }

    /// The protocol axis of the grid.
    pub fn protocols(mut self, protocols: impl IntoIterator<Item = ProtocolSpec>) -> Self {
        self.protocols = protocols.into_iter().collect();
        self
    }

    /// The cluster-size axis of the grid (any iterator of sizes, e.g. `3..=9`).
    pub fn nodes(mut self, nodes: impl IntoIterator<Item = usize>) -> Self {
        self.nodes = nodes.into_iter().collect();
        self
    }

    /// The per-node fault-probability axis of the grid (see [`logspace`]).
    pub fn fault_probs(mut self, probs: impl IntoIterator<Item = f64>) -> Self {
        self.fault_probs = probs.into_iter().collect();
        self
    }

    /// How the fault-probability axis maps onto fault modes (crash by default).
    pub fn faults(mut self, axis: FaultAxis) -> Self {
        self.fault_axis = axis;
        self
    }

    /// The correlation-variant axis of the grid (`[Independent]` by default).
    pub fn correlations(mut self, specs: impl IntoIterator<Item = CorrelationSpec>) -> Self {
        self.correlations = specs.into_iter().collect();
        self
    }

    /// Sweeps the Monte Carlo sample budget itself — a convergence axis. Each grid
    /// cell is replicated once per entry with
    /// [`Budget::with_samples`] applied; when empty (the default) the base budget's
    /// sample count is used as the single entry.
    pub fn samples_sweep(mut self, samples: impl IntoIterator<Item = usize>) -> Self {
        self.sample_budgets = samples.into_iter().collect();
        self
    }

    /// The fault-environment axis of the grid: each grid cell is replicated once
    /// per entry with the environment applied to its simulation budget
    /// ([`crate::engine::SimBudget::environment`]). When empty (the default) the
    /// base budget's environment is the single entry, so queries that never
    /// mention environments behave exactly as before.
    ///
    /// The axis shapes the *empirical* side only: the analytic engines model
    /// crash/Byzantine faults, not gray failures or healing partitions, so the
    /// analytic columns of an environment-swept grid repeat across environments —
    /// which is the point. Paired with [`Query::validate_with_simulation`], cells
    /// where the executable system measurably departs from the analytic
    /// prediction are flagged as [`Divergence`] findings.
    pub fn fault_environments(
        mut self,
        environments: impl IntoIterator<Item = FaultEnvironment>,
    ) -> Self {
        self.environments = environments.into_iter().collect();
        self
    }

    /// The work budget shared by every cell (validated at plan time).
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The second-order (epistemic) axis: every cell additionally runs `draws`
    /// posterior parameter draws — fault probabilities rescaled by samples from
    /// a Beta(`alpha`, `beta`) posterior (typically the hyperparameters of
    /// `TelemetryEstimator::posterior()`) — through its selected engine, and
    /// its [`CellRecord`] carries an [`EpistemicReport`] separating the
    /// epistemic credible interval from the aleatoric sampling interval. See
    /// [`crate::epistemic`] for the determinism contract.
    ///
    /// Hyperparameters are validated at plan time
    /// ([`crate::engine::Budget::validate`]), never asserted here, so a
    /// malformed wire request degrades to a recoverable plan error. A budget
    /// of one draw degenerates to the first-order report, bit for bit.
    pub fn posterior(mut self, draws: usize, alpha: f64, beta: f64) -> Self {
        self.budget = self.budget.with_posterior(draws, alpha, beta);
        self
    }

    /// Which guarantees the report renders.
    pub fn metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Appends an explicit cell: any protocol model on an independent deployment.
    /// For scenarios the grid axes cannot express (placement-sensitive models,
    /// heterogeneous fleets).
    pub fn cell(
        mut self,
        label: impl Into<String>,
        model: Arc<dyn ProtocolModel + Send + Sync>,
        deployment: Deployment,
    ) -> Self {
        self.explicit.push(ExplicitCell {
            label: label.into(),
            model,
            scenario: ScenarioSpec::Independent(deployment),
            budget: None,
            optimizer: false,
        });
        self
    }

    /// Appends an explicit cell with a correlated failure model.
    pub fn cell_correlated(
        mut self,
        label: impl Into<String>,
        model: Arc<dyn ProtocolModel + Send + Sync>,
        target: CorrelationModel,
    ) -> Self {
        self.explicit.push(ExplicitCell {
            label: label.into(),
            model,
            scenario: ScenarioSpec::Correlated(target),
            budget: None,
            optimizer: false,
        });
        self
    }

    /// Appends one optimizer candidate cell: a correlated failure model (zero
    /// groups for independent candidates — the engines treat them alike), a
    /// per-candidate budget override (salted seed, tier sample count), and
    /// scratch namespaced under [`OPTIMIZER_KEY_TAG`]. Only the optimizer
    /// ([`crate::optimize`]) plans these.
    pub(crate) fn optimizer_cell(
        mut self,
        label: impl Into<String>,
        model: Arc<dyn ProtocolModel + Send + Sync>,
        target: CorrelationModel,
        budget: Budget,
    ) -> Self {
        self.explicit.push(ExplicitCell {
            label: label.into(),
            model,
            scenario: ScenarioSpec::Correlated(target),
            budget: Some(budget),
            optimizer: true,
        });
        self
    }

    /// Sets the time axis trajectory cells sample over — see [`TimeAxis`]. Cells
    /// added by [`Query::trajectory_cell`] / [`Query::repairable_cell`] use
    /// [`TimeAxis::default`] (five years, quarterly) when no axis is set.
    pub fn time_horizon(mut self, axis: TimeAxis) -> Self {
        self.time_axis = Some(axis);
        self
    }

    /// Appends a time-domain cell: the guarantee of `model` on the aging `fleet`,
    /// evaluated over a sliding mission window at every step of the time axis
    /// (reliability over time, worst point, first dip below the target).
    ///
    /// The model must be a counting model ([`crate::protocol::CountingModel`]) of
    /// the fleet's size; both are checked at plan time.
    pub fn trajectory_cell(
        mut self,
        label: impl Into<String>,
        model: Arc<dyn ProtocolModel + Send + Sync>,
        fleet: Fleet,
    ) -> Self {
        self.trajectories.push(TrajectorySpec::Fleet {
            label: label.into(),
            model,
            fleet,
        });
        self
    }

    /// Appends a repairable-fleet cell: a group of nodes failing at rate λ and
    /// repaired at rate μ, analysed as a birth–death Markov chain
    /// ([`fault_model::markov::RepairableGroup`]) — first-passage reliability
    /// `R(t)` along the time axis, steady-state quorum availability, mean time to
    /// threshold exceedance (the MTTDL analogue), and unavailability minutes per
    /// year.
    pub fn repairable_cell(mut self, label: impl Into<String>, group: RepairableGroup) -> Self {
        self.trajectories.push(TrajectorySpec::Repairable {
            label: label.into(),
            group,
        });
        self
    }

    /// Requests a paired simulation run for every grid and explicit cell whose
    /// model has an executable counterpart ([`crate::protocol::ExecutableSpec`]):
    /// each such cell's [`CellRecord`] carries a [`ValidationRecord`] with the
    /// empirical safe-and-live frequency and the analytic-vs-empirical z-score.
    /// Cells without an executable counterpart stay analytic-only.
    ///
    /// The trial count — like every other simulation knob (horizon, fault window,
    /// workload) — comes from the budget's [`SimBudget`](crate::engine::SimBudget)
    /// (`Budget::with_sim` / [`Budget::with_sim_trials`](crate::engine::Budget::with_sim_trials)),
    /// so there is exactly one place to tune it.
    pub fn validate_with_simulation(mut self) -> Self {
        self.validation = true;
        self
    }

    /// Number of time-domain cells ([`Query::trajectory_cell`] /
    /// [`Query::repairable_cell`]); these render as [`TrajectoryRecord`]s, not
    /// [`CellRecord`]s, so they are not part of [`Query::cell_count`].
    pub fn trajectory_count(&self) -> usize {
        self.trajectories.len()
    }

    /// Number of cells the query expands to (grid product plus explicit cells).
    pub fn cell_count(&self) -> usize {
        let samples_axis = self.sample_budgets.len().max(1);
        let environment_axis = self.environments.len().max(1);
        self.protocols.len()
            * self.nodes.len()
            * self.fault_probs.len()
            * self.correlations.len()
            * samples_axis
            * environment_axis
            + self.explicit.len()
    }

    /// The base budget (before the samples sweep is applied).
    pub fn base_budget(&self) -> &Budget {
        &self.budget
    }
}

/// Per-(model, scenario) reusable scratch: everything expensive that is a pure
/// function of the cell signature, computed lazily and shared by every cell of the
/// group (and, for grid cells, across plans of the same session).
#[derive(Default)]
pub(crate) struct GroupScratch {
    /// The scenario converted to the sampler's form (one profile clone per group
    /// instead of one per cell).
    target: OnceLock<Arc<CorrelationModel>>,
    /// The compiled bit-sliced kernel (fixed-point thresholds + LUT), for counting
    /// models routed to the packed Monte Carlo kernel.
    packed: OnceLock<Arc<PackedKernel>>,
    /// Selector-pilot failure estimates keyed by budget seed (the estimate is a
    /// deterministic function of (model, scenario, seed)).
    pilots: Mutex<HashMap<u64, f64>>,
    /// Importance-sampling proposals keyed by (seed, tilt bits).
    proposals: Mutex<HashMap<(u64, u64), Arc<Proposal>>>,
}

impl GroupScratch {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    fn target(&self, scenario: Scenario<'_>) -> Arc<CorrelationModel> {
        self.target
            .get_or_init(|| Arc::new(scenario.to_correlation_model()))
            .clone()
    }

    fn packed_kernel(
        &self,
        model: &dyn crate::protocol::CountingModel,
        scenario: Scenario<'_>,
    ) -> Arc<PackedKernel> {
        self.packed
            .get_or_init(|| Arc::new(PackedKernel::new(model, &self.target(scenario))))
            .clone()
    }

    fn pilot_estimate(&self, model: &dyn ProtocolModel, scenario: Scenario<'_>, seed: u64) -> f64 {
        if let Some(&estimate) = self.pilots.lock().unwrap().get(&seed) {
            return estimate;
        }
        let estimate =
            crate::rare_event::naive_failure_estimate_with(model, &self.target(scenario), seed);
        self.pilots.lock().unwrap().insert(seed, estimate);
        estimate
    }

    fn proposal(
        &self,
        model: &dyn ProtocolModel,
        target: &CorrelationModel,
        budget: &Budget,
    ) -> Arc<Proposal> {
        let key = (budget.seed, budget.rare_event_tilt.to_bits());
        if let Some(proposal) = self.proposals.lock().unwrap().get(&key) {
            return proposal.clone();
        }
        let proposal = Arc::new(crate::rare_event::select_proposal(model, target, budget));
        self.proposals
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(proposal)
            .clone()
    }
}

/// Engine selection over prepared scratch: walks the [`crate::engine::ENGINES`]
/// registry in preference order exactly like [`crate::engine::select_engine`], so
/// adding or reordering engines changes both front doors together. The one
/// deviation is deliberate: the importance-sampling engine's `supports` gate runs
/// a selector pilot, which is served from the group cache here instead of being
/// re-run per cell (the cached value is what the pilot would have computed — same
/// model, scenario and seed — so the decision is identical).
pub(crate) fn choose_engine_prepared(
    model: &dyn ProtocolModel,
    scenario: Scenario<'_>,
    budget: &Budget,
    scratch: &GroupScratch,
) -> EngineChoice {
    assert!(
        !scenario.is_empty(),
        "cannot analyze an empty scenario (zero nodes); see analyzer::AnalysisError"
    );
    crate::engine::ENGINES
        .iter()
        .find(|engine| match engine.choice() {
            // Mirrors ImportanceSamplingEngine::supports with the pilot cached
            // (the !is_empty() half is asserted above).
            EngineChoice::ImportanceSampling => {
                budget.rare_event_threshold > 0.0
                    && scratch.pilot_estimate(model, scenario, budget.seed)
                        < budget.rare_event_threshold
            }
            _ => engine.supports(model, scenario, budget),
        })
        .expect("Monte Carlo supports every scenario")
        .choice()
}

fn outcome_from_monte_carlo(mc: crate::montecarlo::MonteCarloReport) -> AnalysisOutcome {
    AnalysisOutcome {
        report: ReliabilityReport::from_raw(RawReliability {
            p_safe: mc.safe.value,
            p_live: mc.live.value,
            p_safe_and_live: mc.safe_and_live.value,
        }),
        engine: EngineChoice::MonteCarlo,
        monte_carlo: Some(mc),
        rare_event: None,
        simulation: None,
    }
}

/// Runs `choice` on the triple using the group scratch — the execution half of a
/// planned cell. The exact engines run as themselves (they have no per-call setup
/// to amortize); the sampling arms are the bodies of the corresponding
/// [`AnalysisEngine`] implementations with the per-call setup replaced by the
/// cached equivalent, so the outcome is bit-identical to the engine's own `run`.
pub(crate) fn run_prepared(
    model: &dyn ProtocolModel,
    scenario: Scenario<'_>,
    budget: &Budget,
    choice: EngineChoice,
    scratch: &GroupScratch,
) -> AnalysisOutcome {
    match choice {
        EngineChoice::Counting => CountingEngine.run(model, scenario, budget),
        EngineChoice::Enumeration => EnumerationEngine.run(model, scenario, budget),
        EngineChoice::MonteCarlo => {
            if budget.mc_kernel != McKernel::Scalar {
                if let Some(counting) = model.as_counting() {
                    let kernel = scratch.packed_kernel(counting, scenario);
                    return outcome_from_monte_carlo(crate::packed::packed_par_with_kernel(
                        &kernel,
                        budget.monte_carlo_samples,
                        budget.seed,
                        budget.mc_lane_words,
                    ));
                }
            }
            let target = scratch.target(scenario);
            outcome_from_monte_carlo(crate::montecarlo::monte_carlo_scalar_par(
                model,
                &target,
                budget.monte_carlo_samples,
                budget.seed,
            ))
        }
        EngineChoice::ImportanceSampling => {
            let target = scratch.target(scenario);
            let proposal = scratch.proposal(model, &target, budget);
            crate::rare_event::run_importance_sampling(model, &target, &proposal, budget)
        }
        // Never planned (the simulation engine is outside the auto-selection
        // registry), but kept total so a pinned choice runs correctly.
        EngineChoice::Simulation => SimulationEngine.run(model, scenario, budget),
    }
}

/// The single-cell path behind [`crate::analyzer::analyze_auto`] and
/// [`crate::analyzer::analyze_scenario`]: a one-cell plan with throwaway scratch.
/// Keeping the per-cell front doors on this exact code path is what makes
/// [`QueryPlan::execute`] bit-identical to a per-cell loop by construction.
pub(crate) fn analyze_single(
    model: &dyn ProtocolModel,
    scenario: Scenario<'_>,
    budget: &Budget,
) -> AnalysisOutcome {
    let scratch = GroupScratch::new();
    let choice = choose_engine_prepared(model, scenario, budget, &scratch);
    run_prepared(model, scenario, budget, choice, &scratch)
}

/// Namespace tag of grid-cell cache keys (coordinate encoding).
const GRID_KEY_TAG: u64 = 0;
/// Namespace tag of explicit-cell cache keys (content encoding).
const CONTENT_KEY_TAG: u64 = 1;
/// Namespace tag of epistemic-draw cache keys: `[tag, alpha bits, beta bits,
/// seed, draw index]` prefixed onto the base cell's key words. The tag keeps a
/// second-order draw's scratch (kernel compiled for the *scaled* scenario) from
/// ever aliasing the first-order cell's scratch, and the draw index separates
/// sibling draws; the draw count is deliberately excluded — draw `k`'s scenario
/// is independent of how many draws follow it, so plans with different `K`
/// share prefixes.
const EPISTEMIC_KEY_TAG: u64 = 2;
/// Namespace tag of optimizer candidate cells: the tag prefixed onto the
/// candidate's content key words (which themselves begin with
/// [`CONTENT_KEY_TAG`]), so an optimizer candidate's scratch can never alias a
/// first-order explicit cell of identical content, a grid cell, or an
/// epistemic draw — the four namespaces differ in their first word. Candidates
/// of *both* refinement tiers share one scratch group per (model, scenario)
/// inside the namespace: the screening tier's converted correlation model and
/// compiled kernel are reused by the importance-sampling re-score, and the
/// re-score's learned proposal is reused by later searches of the same space
/// (proposals are keyed by seed and tilt inside the group). Pinned by the
/// cache-aliasing regression tests in [`crate::optimize`].
pub(crate) const OPTIMIZER_KEY_TAG: u64 = 3;

/// Structural identity of a grid cell's (model, scenario) pair — the axes build
/// both deterministically, so the coordinates *are* the content. Fixed layout:
/// `[tag, protocol variant, q_per, q_vc, n, p bits, axis tag, axis bits,
/// correlation tag, correlation racks, correlation bits]` (zeroes where a
/// variant has no such parameter).
fn grid_key_words(
    spec: ProtocolSpec,
    n: usize,
    fault_prob: f64,
    fault_axis: (u8, u64),
    correlation: (u8, usize, u64),
) -> Vec<u64> {
    let (variant, q_per, q_vc) = match spec {
        ProtocolSpec::Raft => (0u64, 0u64, 0u64),
        ProtocolSpec::RaftFlexible { q_per, q_vc } => (1, q_per as u64, q_vc as u64),
        ProtocolSpec::Pbft => (2, 0, 0),
    };
    vec![
        GRID_KEY_TAG,
        variant,
        q_per,
        q_vc,
        n as u64,
        fault_prob.to_bits(),
        fault_axis.0 as u64,
        fault_axis.1,
        correlation.0 as u64,
        correlation.1 as u64,
        correlation.2,
    ]
}

/// Structural identity of an explicit cell's (model, scenario) pair: the model's
/// [`cache_signature`](ProtocolModel::cache_signature) (length-prefixed) followed
/// by the scenario's full content — every profile's probability bits plus every
/// correlation group's members, shock-probability bits and shock mode. `None`
/// when the model has no stable signature, in which case the cell gets
/// plan-local scratch (always correct, never amortized).
pub(crate) fn content_key_words(
    model: &dyn ProtocolModel,
    scenario: Scenario<'_>,
) -> Option<Vec<u64>> {
    let sig = model.cache_signature()?;
    let mut words = Vec::with_capacity(4 + sig.len() + 2 * scenario.len());
    words.push(CONTENT_KEY_TAG);
    words.push(sig.len() as u64);
    words.extend(sig);
    let profiles = scenario.profiles();
    words.push(profiles.len() as u64);
    for profile in profiles {
        words.push(profile.crash_probability().to_bits());
        words.push(profile.byzantine_probability().to_bits());
    }
    // An independent deployment encodes as zero correlation groups — it *is* a
    // correlation model with no groups, and every engine treats them alike.
    let groups: &[CorrelationGroup] = match scenario {
        Scenario::Independent(_) => &[],
        Scenario::Correlated(c) => c.groups(),
    };
    words.push(groups.len() as u64);
    for group in groups {
        words.push(group.members.len() as u64);
        words.extend(group.members.iter().map(|&m| m as u64));
        words.push(group.shock_probability.to_bits());
        words.push(match group.shock_mode {
            fault_model::mode::NodeState::Correct => 0,
            fault_model::mode::NodeState::Crashed => 1,
            fault_model::mode::NodeState::Byzantine => 2,
        });
    }
    Some(words)
}

/// The sweep-native analysis front door: owns the pool pinning and the reusable
/// per-(model, scenario) scratch that [`QueryPlan`]s share. See the module docs.
///
/// # Examples
///
/// ```
/// use prob_consensus::engine::EngineChoice;
/// use prob_consensus::query::{AnalysisSession, ProtocolSpec, Query};
///
/// let session = AnalysisSession::new();
/// let query = Query::new()
///     .protocols([ProtocolSpec::Raft])
///     .nodes([3usize])
///     .fault_probs([0.01]);
/// // Plan and execute separately (or use `session.run` to do both at once).
/// let plan = session.plan(&query).expect("well-formed query");
/// assert_eq!(plan.engine(0), EngineChoice::Counting);
/// let report = plan.execute();
/// assert_eq!(
///     report.cell(0).outcome.report.safe_and_live.as_percent(),
///     "99.97%"
/// );
/// ```
pub struct AnalysisSession {
    models: Mutex<HashMap<(ProtocolSpec, usize), Arc<dyn ProtocolModel + Send + Sync>>>,
    cache: SessionCache,
    pool: Option<Arc<rayon::ThreadPool>>,
}

impl Default for AnalysisSession {
    fn default() -> Self {
        Self::with_cache_capacity(Self::DEFAULT_CACHE_CAPACITY)
    }
}

impl AnalysisSession {
    /// Default bound on cached (model, scenario) scratch groups — a few thousand
    /// compiled kernels and converted correlation models. Scratch is a pure
    /// cache: eviction never changes results, only costs recomputation, and
    /// plans in flight keep their own `Arc`s, so eviction cannot invalidate a
    /// planned query.
    pub const DEFAULT_CACHE_CAPACITY: usize = 4_096;

    /// A session executing on the process-wide persistent rayon pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// A session whose scratch cache is bounded to roughly `capacity` groups
    /// (LRU eviction past the bound; see [`crate::cache`]). The default
    /// ([`Self::DEFAULT_CACHE_CAPACITY`]) is right for almost everyone — tight
    /// bounds exist for memory-constrained servers and for eviction tests.
    pub fn with_cache_capacity(capacity: usize) -> Self {
        Self {
            models: Mutex::new(HashMap::new()),
            cache: SessionCache::new(capacity),
            pool: None,
        }
    }

    /// A session whose plans and executions run with a pinned thread count
    /// (primarily for determinism tests; the default pool is usually right).
    ///
    /// # Panics
    ///
    /// Panics if the pool cannot be built.
    pub fn with_threads(threads: usize) -> Self {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool builds");
        Self {
            pool: Some(Arc::new(pool)),
            ..Self::default()
        }
    }

    fn model(&self, spec: ProtocolSpec, n: usize) -> Arc<dyn ProtocolModel + Send + Sync> {
        if let Some(model) = self.models.lock().unwrap().get(&(spec, n)) {
            return Arc::clone(model);
        }
        // Build outside the lock: constructors panic on invalid (spec, n)
        // combinations, and a long-running session (the server) must survive a
        // rejected plan without poisoning the model cache.
        let model = spec.build(n);
        Arc::clone(
            self.models
                .lock()
                .unwrap()
                .entry((spec, n))
                .or_insert(model),
        )
    }

    /// A snapshot of the scratch-cache counters (hits, misses, evictions,
    /// resident entries) — the observability surface behind the server
    /// protocol's `stats` request.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drops all cached per-(model, scenario) scratch (converted correlation
    /// models, compiled packed kernels, pilot estimates, learned proposals).
    /// Purely a memory lever: subsequent plans recompute on demand with
    /// identical results.
    pub fn clear_scratch(&self) {
        self.cache.clear();
        self.models.lock().unwrap().clear();
    }

    /// Expands the budget's epistemic axis into the planned draws for one cell
    /// group: the deterministic posterior draws
    /// ([`crate::epistemic::posterior_draws`]), each paired with its scaled
    /// scenario and its own cached scratch group.
    ///
    /// Draw scratch is cached under [`EPISTEMIC_KEY_TAG`] with the draw's
    /// hyperparameters, seed and index prefixed onto the base cell's key words,
    /// so a second-order draw can never alias the first-order cell whose kernel
    /// was compiled for the *unscaled* scenario (pinned by the cache-aliasing
    /// regression test below). Cells without a stable base key (models without
    /// a cache signature) get plan-local draw scratch.
    ///
    /// Returns no draws for first-order budgets and for single-draw budgets:
    /// one draw carries no spread to summarize, so `K = 1` degenerates to the
    /// point-estimate report bit for bit.
    fn plan_draws(
        &self,
        budget: &Budget,
        scenario: &ScenarioSpec,
        base_key: Option<&[u64]>,
    ) -> Arc<Vec<PlannedDraw>> {
        let Some(ep) = budget.epistemic.filter(|ep| ep.draws > 1) else {
            return Arc::new(Vec::new());
        };
        Arc::new(
            crate::epistemic::posterior_draws(&ep, budget.seed)
                .into_iter()
                .enumerate()
                .map(|(k, draw)| {
                    let scratch = match base_key {
                        Some(words) => {
                            let mut key = vec![
                                EPISTEMIC_KEY_TAG,
                                ep.alpha.to_bits(),
                                ep.beta.to_bits(),
                                budget.seed,
                                k as u64,
                            ];
                            key.extend_from_slice(words);
                            self.cache.get_or_insert(CacheKey::from_words(key))
                        }
                        None => Arc::new(GroupScratch::new()),
                    };
                    PlannedDraw {
                        p: draw.p,
                        scale: draw.scale,
                        scenario: scenario.scaled(draw.scale),
                        scratch,
                    }
                })
                .collect(),
        )
    }

    /// Plans a query: validates the budget, expands the axes into cells, selects
    /// the engine for every cell up front (running each group's selector pilot at
    /// most once), and groups cells by (model, scenario) signature so kernel
    /// compilation and proposal learning amortize across the sweep.
    pub fn plan(&self, query: &Query) -> Result<QueryPlan, AnalysisError> {
        query
            .budget
            .validate()
            .map_err(AnalysisError::InvalidBudget)?;
        // Per-cell budget overrides (optimizer candidates) are validated like
        // the base budget: a malformed override fails the whole plan up front.
        for explicit in &query.explicit {
            if let Some(budget) = &explicit.budget {
                budget.validate().map_err(AnalysisError::InvalidBudget)?;
            }
        }
        let sample_axis: Vec<usize> = if query.sample_budgets.is_empty() {
            vec![query.budget.monte_carlo_samples]
        } else {
            query.sample_budgets.clone()
        };
        let environment_axis: Vec<FaultEnvironment> = if query.environments.is_empty() {
            vec![query.budget.sim.environment]
        } else {
            query.environments.clone()
        };
        // A validated cell runs its paired simulation only if the model has an
        // executable counterpart of the scenario's size.
        let validation_for = |model: &dyn ProtocolModel, scenario: Scenario<'_>| {
            query.validation
                && model
                    .executable()
                    .is_some_and(|spec| spec.num_nodes() == scenario.len())
        };
        let plan_cells = || -> Result<Vec<PlannedCell>, AnalysisError> {
            let mut cells = Vec::with_capacity(query.cell_count());
            for &spec in &query.protocols {
                for &n in &query.nodes {
                    if n == 0 {
                        return Err(AnalysisError::EmptyScenario);
                    }
                    let model = self.model(spec, n);
                    for &p in &query.fault_probs {
                        let deployment = query.fault_axis.deployment(n, p);
                        for corr in &query.correlations {
                            let scenario = corr.apply(deployment.clone());
                            let key_words =
                                grid_key_words(spec, n, p, query.fault_axis.key(), corr.key());
                            let scratch = self
                                .cache
                                .get_or_insert(CacheKey::from_words(key_words.clone()));
                            // The epistemic draws of this coordinate, shared by
                            // its samples/environment replicates: the draw set
                            // depends only on (hyperparameters, seed), and the
                            // scaled scenarios only on this scenario.
                            let draws = self.plan_draws(&query.budget, &scenario, Some(&key_words));
                            for &samples in &sample_axis {
                                // The environment axis nests innermost: it only
                                // varies the paired simulation, so cells across
                                // it share the analytic engine choice and the
                                // group scratch (the analytic side is
                                // environment-blind by construction).
                                for &environment in &environment_axis {
                                    let budget = query
                                        .budget
                                        .with_samples(samples)
                                        .with_fault_environment(environment);
                                    let engine = choose_engine_prepared(
                                        model.as_ref(),
                                        scenario.as_scenario(),
                                        &budget,
                                        &scratch,
                                    );
                                    let mut label =
                                        format!("{}/N={n}/p={p}/{}", spec.label(), corr.label());
                                    if environment != FaultEnvironment::Clean {
                                        label.push_str("/env=");
                                        label.push_str(environment.label());
                                    }
                                    cells.push(PlannedCell {
                                        label,
                                        protocol: spec.label(),
                                        nodes: n,
                                        fault_prob: Some(p),
                                        correlation: corr.label(),
                                        environment,
                                        validate: validation_for(
                                            model.as_ref(),
                                            scenario.as_scenario(),
                                        ),
                                        model: model.clone(),
                                        scenario: scenario.clone(),
                                        budget,
                                        engine,
                                        scratch: scratch.clone(),
                                        draws: draws.clone(),
                                    });
                                }
                            }
                        }
                    }
                }
            }
            for explicit in &query.explicit {
                let scenario = explicit.scenario.as_scenario();
                if scenario.is_empty() {
                    return Err(AnalysisError::EmptyScenario);
                }
                if explicit.model.num_nodes() != scenario.len() {
                    return Err(AnalysisError::SizeMismatch {
                        model_nodes: explicit.model.num_nodes(),
                        scenario_nodes: scenario.len(),
                    });
                }
                // Explicit cells hit the session cache too, keyed by model
                // content fingerprint + full scenario content — the dominant
                // server workload is repeated single-cell requests. Models
                // without a stable signature get plan-local scratch. Optimizer
                // candidates prepend their namespace tag so candidate scratch
                // never aliases a plain cell of identical content (see
                // [`OPTIMIZER_KEY_TAG`]).
                let budget = explicit.budget.as_ref().unwrap_or(&query.budget);
                let key_words =
                    content_key_words(explicit.model.as_ref(), scenario).map(|mut words| {
                        if explicit.optimizer {
                            words.insert(0, OPTIMIZER_KEY_TAG);
                        }
                        words
                    });
                let scratch = match key_words.clone() {
                    Some(words) => self.cache.get_or_insert(CacheKey::from_words(words)),
                    None => Arc::new(GroupScratch::new()),
                };
                let draws = self.plan_draws(budget, &explicit.scenario, key_words.as_deref());
                let engine =
                    choose_engine_prepared(explicit.model.as_ref(), scenario, budget, &scratch);
                let correlation = match &explicit.scenario {
                    ScenarioSpec::Independent(_) => "independent".to_string(),
                    ScenarioSpec::Correlated(c) if c.is_correlated() => "correlated".to_string(),
                    ScenarioSpec::Correlated(_) => "independent".to_string(),
                };
                // Explicit cells keep the base budget's environment — the axis
                // sweeps the grid; a bespoke cell pins its own budget.
                cells.push(PlannedCell {
                    label: explicit.label.clone(),
                    protocol: explicit.model.name(),
                    nodes: explicit.model.num_nodes(),
                    fault_prob: None,
                    correlation,
                    environment: budget.sim.environment,
                    validate: validation_for(explicit.model.as_ref(), scenario),
                    model: explicit.model.clone(),
                    scenario: explicit.scenario.clone(),
                    budget: *budget,
                    engine,
                    scratch,
                    draws,
                });
            }
            Ok(cells)
        };
        // Validate the time axis and the time-domain cells up front, like every
        // other cell shape (the axis fields are public, so a struct-literal axis
        // can bypass the constructor asserts).
        let time_axis = query.time_axis.unwrap_or_default();
        time_axis.validate()?;
        for spec in &query.trajectories {
            if let TrajectorySpec::Fleet { model, fleet, .. } = spec {
                if model.as_counting().is_none() {
                    return Err(AnalysisError::TrajectoryNotCounting);
                }
                if fleet.is_empty() {
                    return Err(AnalysisError::EmptyScenario);
                }
                if model.num_nodes() != fleet.len() {
                    return Err(AnalysisError::SizeMismatch {
                        model_nodes: model.num_nodes(),
                        scenario_nodes: fleet.len(),
                    });
                }
            }
        }
        let cells = match &self.pool {
            Some(pool) => pool.install(plan_cells)?,
            None => plan_cells()?,
        };
        Ok(QueryPlan {
            cells,
            trajectories: query.trajectories.clone(),
            time_axis,
            metrics: query.metrics,
            pool: self.pool.clone(),
        })
    }

    /// Plans and executes in one call.
    pub fn run(&self, query: &Query) -> Result<AnalysisReport, AnalysisError> {
        Ok(self.plan(query)?.execute())
    }
}

/// One planned cell: the resolved model/scenario/budget triple, the engine the
/// selector chose for it, and the shared group scratch.
struct PlannedCell {
    label: String,
    protocol: String,
    nodes: usize,
    fault_prob: Option<f64>,
    correlation: String,
    environment: FaultEnvironment,
    model: Arc<dyn ProtocolModel + Send + Sync>,
    scenario: ScenarioSpec,
    budget: Budget,
    engine: EngineChoice,
    scratch: Arc<GroupScratch>,
    /// The second-order posterior draws of this cell (empty for first-order
    /// budgets), shared across the samples/environment replicates of one grid
    /// coordinate.
    draws: Arc<Vec<PlannedDraw>>,
    /// Whether cross-validation was requested and this cell's model has an
    /// executable counterpart (the trial count lives in the budget's `SimBudget`).
    validate: bool,
}

/// One planned posterior draw: the sampled reliability parameter, the scale
/// factor it implies relative to the posterior mean, the scaled scenario the
/// engines actually run, and the draw's own cached scratch group (scaled
/// scenarios compile their own kernels; see [`EPISTEMIC_KEY_TAG`]).
struct PlannedDraw {
    p: f64,
    scale: f64,
    scenario: ScenarioSpec,
    scratch: Arc<GroupScratch>,
}

/// A planned query: every cell's engine is already selected and every group's
/// shared setup is ready to be (lazily) compiled once. [`QueryPlan::execute`] may
/// be called repeatedly; results are deterministic per the module-level contract.
pub struct QueryPlan {
    cells: Vec<PlannedCell>,
    trajectories: Vec<TrajectorySpec>,
    time_axis: TimeAxis,
    metrics: Metrics,
    pool: Option<Arc<rayon::ThreadPool>>,
}

impl std::fmt::Debug for QueryPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryPlan")
            .field("cells", &self.cells.len())
            .field("engines", &self.engines())
            .finish_non_exhaustive()
    }
}

/// Runs the paired simulation of a validated cell and standardizes the
/// disagreement. The standard error is taken from the empirical Wilson interval
/// (never zero for a finite trial count), so the z-score is always finite.
fn validation_record(
    model: &dyn ProtocolModel,
    scenario: Scenario<'_>,
    budget: &Budget,
    analytic: f64,
) -> ValidationRecord {
    let simulation = crate::simulation::simulate_reliability(model, scenario, budget);
    let empirical = simulation.safe_and_live.value;
    let se = simulation.safe_and_live.half_width() / Z_95;
    let z_score = if se > 0.0 {
        (empirical - analytic) / se
    } else {
        0.0
    };
    // A divergence past the z-threshold is promoted to a structured finding:
    // direction (is the analytic guarantee overpromising or conservative?) and
    // magnitude in probability units, so consumers never have to re-derive the
    // verdict from the raw z column.
    let divergence = (z_score.abs() > DIVERGENCE_Z).then(|| Divergence {
        direction: if empirical < analytic {
            DivergenceDirection::EmpiricalBelow
        } else {
            DivergenceDirection::EmpiricalAbove
        },
        magnitude: (empirical - analytic).abs(),
    });
    ValidationRecord {
        simulation,
        analytic,
        z_score,
        environment: budget.sim.environment,
        divergence,
    }
}

/// Executes one time-domain cell against the plan's time axis.
fn trajectory_record(spec: &TrajectorySpec, axis: &TimeAxis) -> TrajectoryRecord {
    match spec {
        TrajectorySpec::Fleet {
            label,
            model,
            fleet,
        } => {
            let counting = model
                .as_counting()
                .expect("fleet trajectory models are validated as counting at plan time");
            let trajectory = timevarying::reliability_trajectory(
                counting,
                fleet,
                axis.window_hours,
                axis.horizon_hours,
                axis.step_hours,
            );
            let points = trajectory
                .iter()
                .map(|p| TrajectoryPoint {
                    at_hours: p.at_hours,
                    probability: p.report.safe_and_live.probability(),
                })
                .collect();
            let first_below = axis
                .target_nines
                .and_then(|target| timevarying::first_time_below_target(&trajectory, target));
            let summary = timevarying::summarize(&trajectory, axis.target_nines.unwrap_or(0.0))
                .expect("trajectories always include the t = 0 point");
            TrajectoryRecord {
                label: label.clone(),
                kind: TrajectoryKind::Fleet,
                points,
                target_nines: axis.target_nines,
                first_below_target_hours: first_below,
                worst_probability: summary.worst_probability,
                worst_at_hours: summary.worst_at_hours,
                steady_state_availability: None,
                mean_time_to_threshold_hours: None,
                unavailability_minutes_per_year: None,
            }
        }
        TrajectorySpec::Repairable { label, group } => {
            let points: Vec<TrajectoryPoint> = axis
                .sample_times()
                .into_iter()
                .map(|t| TrajectoryPoint {
                    at_hours: t,
                    probability: group.reliability_at(t),
                })
                .collect();
            let first_below = axis.target_nines.and_then(|target| {
                points
                    .iter()
                    .find(|p| !Nines::from_probability(p.probability).meets(target))
                    .map(|p| p.at_hours)
            });
            let worst = points
                .iter()
                .min_by(|a, b| {
                    a.probability
                        .partial_cmp(&b.probability)
                        .expect("reliabilities are never NaN")
                })
                .expect("the time axis always samples t = 0");
            TrajectoryRecord {
                label: label.clone(),
                kind: TrajectoryKind::Repairable,
                target_nines: axis.target_nines,
                first_below_target_hours: first_below,
                worst_probability: worst.probability,
                worst_at_hours: worst.at_hours,
                points,
                steady_state_availability: Some(group.steady_state_availability()),
                mean_time_to_threshold_hours: Some(group.mean_time_to_threshold_exceeded()),
                unavailability_minutes_per_year: Some(group.unavailability_minutes_per_year()),
            }
        }
    }
}

/// One schedulable unit of a plan execution. [`QueryPlan::execute`] decomposes the
/// plan into these, orders them by estimated cost (largest first) and hands them to
/// the work-stealing pool as individually stealable tasks
/// ([`rayon::for_each_task`]); every item writes its own result slot, so report
/// content never depends on which worker ran what, or in what order.
#[derive(Clone, Copy)]
enum WorkItem {
    /// A whole cell through [`run_prepared`] — the exact engines, importance
    /// sampling and pinned simulation, whose bodies have no chunk structure to
    /// expose.
    Cell(usize),
    /// One sample chunk of a Monte Carlo cell, in the exact
    /// [`chunk_count`]/[`chunk_len`]/[`chunk_seed`] layout of the whole-cell
    /// samplers — identical layout is what keeps the scheduled merge bit-identical
    /// to a per-cell run.
    McChunk {
        /// Index of the owning cell.
        cell: usize,
        /// Chunk index within the cell's sample budget.
        chunk: usize,
    },
    /// One posterior draw of a second-order cell: the whole cell re-run through
    /// [`run_prepared`] on the draw's scaled scenario (draws are engine-agnostic,
    /// so they stay whole even when the base cell chunks).
    Draw {
        /// Index of the owning cell.
        cell: usize,
        /// Draw index within the cell's planned posterior draws.
        draw: usize,
    },
    /// One time-domain trajectory cell.
    Trajectory(usize),
}

/// What one executed work item produced (placed into the slot of its item index).
enum ItemOutput {
    /// Hit counters of one Monte Carlo sample chunk.
    Hits(HitCounts),
    /// A whole cell's outcome (boxed: an outcome is by far the widest variant).
    Outcome(Box<AnalysisOutcome>),
    /// A time-domain record.
    Trajectory(TrajectoryRecord),
}

/// Observer of a plan execution's per-cell completions, the streaming half of
/// [`QueryPlan::execute_streaming`]: the scheduler calls [`on_cell`](Self::on_cell)
/// the moment a cell's last work item retires (validation included), long before
/// the whole report materializes — which is how the server streams `CellRecord`s
/// over the wire while later cells are still sampling.
///
/// Callbacks fire from pool workers, concurrently (hence `Sync`) and in an
/// **unspecified order** — completion order depends on scheduling. Every event
/// carries its query-order index, so a consumer that wants report order
/// reassembles by index. The records passed here are exactly the records the
/// returned [`AnalysisReport`] will contain (the streaming path *is* the
/// execution path; `execute` just attaches a no-op sink).
pub trait StreamSink: Sync {
    /// A cell completed: its merged outcome, paired validation (if requested)
    /// and wall time are final. `index` is the cell's query-order position.
    fn on_cell(&self, index: usize, record: &CellRecord) {
        let _ = (index, record);
    }

    /// A time-domain trajectory cell completed. `index` is its query-order
    /// position among the plan's trajectory cells.
    fn on_trajectory(&self, index: usize, record: &TrajectoryRecord) {
        let _ = (index, record);
    }
}

/// The no-op sink behind [`QueryPlan::execute`].
struct DiscardSink;

impl StreamSink for DiscardSink {}

/// The aleatoric (sampling) interval an outcome puts on the joint safe-and-live
/// probability: the Monte Carlo confidence interval when a sampler ran, the
/// importance-sampling interval for rare-event cells, and the collapsed
/// `(v, v)` interval for exact engines (no sampling error to report).
fn outcome_bounds(outcome: &AnalysisOutcome) -> (f64, f64) {
    if let Some(mc) = &outcome.monte_carlo {
        (mc.safe_and_live.lower, mc.safe_and_live.upper)
    } else if let Some(re) = &outcome.rare_event {
        (re.safe_and_live.lower, re.safe_and_live.upper)
    } else {
        let v = outcome.report.safe_and_live.probability();
        (v, v)
    }
}

/// The kernel [`run_prepared`]'s Monte Carlo arm would select for this cell; the
/// chunk items replicate the choice so the scheduled report names the same kernel.
fn mc_kernel_kind(cell: &PlannedCell) -> McKernel {
    if cell.budget.mc_kernel != McKernel::Scalar && cell.model.as_counting().is_some() {
        McKernel::Packed
    } else {
        McKernel::Scalar
    }
}

impl QueryPlan {
    /// Number of planned cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the plan contains no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The engine selected for cell `index` (cells are in query order).
    pub fn engine(&self, index: usize) -> EngineChoice {
        self.cells[index].engine
    }

    /// The engines selected for all cells, in query order.
    pub fn engines(&self) -> Vec<EngineChoice> {
        self.cells.iter().map(|c| c.engine).collect()
    }

    /// The label of cell `index`.
    pub fn label(&self, index: usize) -> &str {
        &self.cells[index].label
    }

    /// Number of planned time-domain cells.
    pub fn trajectory_count(&self) -> usize {
        self.trajectories.len()
    }

    /// Executes the plan across the persistent pool as one work-stealing DAG and
    /// collects one record per cell, in query order.
    ///
    /// Rather than scheduling cell-at-a-time (which strands the pool on the last
    /// long cell of a mixed sweep), the plan is decomposed into work items:
    /// Monte Carlo cells split into their
    /// [`MC_CHUNK_SIZE`](crate::montecarlo::MC_CHUNK_SIZE) sample chunks, exact /
    /// importance-sampling cells and trajectories stay whole. Items execute
    /// largest-estimated-first so the long poles start early and the cheap items
    /// backfill the stragglers' idle workers; each item writes a slot keyed by its
    /// item index, and the per-cell merge folds chunk counters in chunk order —
    /// so the report is **bit-identical** to a sequential per-cell
    /// [`analyze_auto`](crate::analyzer::analyze_auto) /
    /// [`analyze_scenario`](crate::analyzer::analyze_scenario) loop at any thread
    /// count, including the paired validation runs (executed inline on each
    /// cell's completion, since they need the merged analytic estimates) and the
    /// trajectory records.
    pub fn execute(&self) -> AnalysisReport {
        self.execute_streaming(&DiscardSink)
    }

    /// [`execute`](Self::execute) with per-cell completion callbacks: `sink`
    /// observes every [`CellRecord`] / [`TrajectoryRecord`] the moment it is
    /// final, before the rest of the plan finishes — see [`StreamSink`]. The
    /// returned report is the same (bit-identical, cells in query order) as
    /// `execute`'s; the sink only adds observation, never changes execution.
    pub fn execute_streaming(&self, sink: &dyn StreamSink) -> AnalysisReport {
        let run = || self.execute_scheduled(sink);
        match &self.pool {
            Some(pool) => pool.install(run),
            None => run(),
        }
    }

    /// The scheduler behind [`execute_streaming`](Self::execute_streaming):
    /// decompose, run the item wave, and complete each cell (merge + inline
    /// validation + emission) on the worker that retires its last item.
    fn execute_scheduled(&self, sink: &dyn StreamSink) -> AnalysisReport {
        let (items, spans) = self.work_items();
        let mut order: Vec<usize> = (0..items.len()).collect();
        order.sort_by_key(|&index| (std::cmp::Reverse(self.item_cost(items[index])), index));
        let slots: Vec<Mutex<Option<(ItemOutput, u64)>>> =
            items.iter().map(|_| Mutex::new(None)).collect();
        // One countdown per cell: the task that makes it hit zero owns the merge,
        // the paired validation and the emission of that cell's record — so cells
        // stream out as they complete instead of waiting for the full item wave.
        let countdown: Vec<AtomicUsize> = spans
            .iter()
            .map(|&(_, len)| AtomicUsize::new(len))
            .collect();
        let cell_slots: Vec<Mutex<Option<CellRecord>>> =
            self.cells.iter().map(|_| Mutex::new(None)).collect();
        let trajectory_slots: Vec<Mutex<Option<TrajectoryRecord>>> =
            self.trajectories.iter().map(|_| Mutex::new(None)).collect();
        rayon::for_each_task(order.len(), |position| {
            let index = order[position];
            let start = Instant::now();
            let output = self.run_item(items[index]);
            let elapsed = start.elapsed().as_nanos() as u64;
            let cell_index = match items[index] {
                WorkItem::Cell(cell)
                | WorkItem::McChunk { cell, .. }
                | WorkItem::Draw { cell, .. } => cell,
                WorkItem::Trajectory(t) => {
                    let record = match output {
                        ItemOutput::Trajectory(record) => record,
                        _ => unreachable!("trajectory items produce trajectory records"),
                    };
                    sink.on_trajectory(t, &record);
                    *trajectory_slots[t].lock().unwrap() = Some(record);
                    return;
                }
            };
            *slots[index].lock().unwrap() = Some((output, elapsed));
            // AcqRel: the last decrementer must observe every sibling's slot
            // write (the Mutex release alone orders only same-slot accesses).
            if countdown[cell_index].fetch_sub(1, Ordering::AcqRel) == 1 {
                let record = self.complete_cell(cell_index, spans[cell_index], &slots);
                sink.on_cell(cell_index, &record);
                *cell_slots[cell_index].lock().unwrap() = Some(record);
            }
        });
        AnalysisReport {
            metrics: self.metrics,
            cells: cell_slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .unwrap()
                        .expect("every cell completed before for_each_task returned")
                })
                .collect(),
            trajectories: trajectory_slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .unwrap()
                        .expect("every trajectory completed before for_each_task returned")
                })
                .collect(),
        }
    }

    /// Merges a completed cell's item outputs into its final [`CellRecord`],
    /// running the paired validation inline when the query requested one.
    ///
    /// Chunk items sit in the slot span in chunk order, so the fold below replays
    /// exactly the whole-cell samplers' collect-then-fold — the record is
    /// bit-identical to a sequential per-cell run no matter which worker gets
    /// here, or when.
    fn complete_cell(
        &self,
        index: usize,
        span: (usize, usize),
        slots: &[Mutex<Option<(ItemOutput, u64)>>],
    ) -> CellRecord {
        let cell = &self.cells[index];
        let (start, len) = span;
        let mut wall_ns = 0u64;
        let mut take = |item: usize| -> ItemOutput {
            let (output, ns) = slots[item]
                .lock()
                .unwrap()
                .take()
                .expect("the countdown retired after every span slot was written");
            wall_ns += ns;
            output
        };
        // The span tail holds the cell's posterior-draw items (in draw order);
        // everything before it is the base cell.
        let draws_len = cell.draws.len();
        let base_len = len - draws_len;
        let outcome = if cell.engine == EngineChoice::MonteCarlo {
            let mut hits = HitCounts::default();
            for item in start..start + base_len {
                match take(item) {
                    ItemOutput::Hits(chunk_hits) => hits = hits + chunk_hits,
                    _ => unreachable!("Monte Carlo cells decompose into chunk items"),
                }
            }
            let samples = cell.budget.monte_carlo_samples.max(1);
            outcome_from_monte_carlo(report_from_counts(hits, samples, mc_kernel_kind(cell)))
        } else {
            match take(start) {
                ItemOutput::Outcome(outcome) => *outcome,
                _ => unreachable!("non-sampling cells are whole-cell items"),
            }
        };
        // Fold the posterior-draw outcomes into the second-order report. Draw
        // order is the planner's (deterministic) order, so the report never
        // depends on which worker ran what.
        let epistemic = (draws_len > 0).then(|| {
            let level = cell
                .budget
                .epistemic
                .expect("draw items exist only under an epistemic budget")
                .level;
            let records: Vec<EpistemicDraw> = cell
                .draws
                .iter()
                .enumerate()
                .map(|(k, draw)| {
                    let outcome = match take(start + base_len + k) {
                        ItemOutput::Outcome(outcome) => *outcome,
                        _ => unreachable!("draw items are whole-cell items"),
                    };
                    let (lower, upper) = outcome_bounds(&outcome);
                    EpistemicDraw {
                        p: draw.p,
                        scale: draw.scale,
                        value: outcome.report.safe_and_live.probability(),
                        lower,
                        upper,
                    }
                })
                .collect();
            EpistemicReport::from_draws(level, records, outcome_bounds(&outcome))
        });
        // The paired simulation needs the merged analytic estimate, so it runs
        // here, on this cell's completion — not as a plan-wide second wave. It is
        // a pure function of (model, scenario, budget, estimate), so where it
        // runs never shows in the record.
        let validation = cell.validate.then(|| {
            let start = Instant::now();
            let record = validation_record(
                cell.model.as_ref(),
                cell.scenario.as_scenario(),
                &cell.budget,
                outcome.report.safe_and_live.probability(),
            );
            wall_ns += start.elapsed().as_nanos() as u64;
            record
        });
        CellRecord {
            label: cell.label.clone(),
            protocol: cell.protocol.clone(),
            nodes: cell.nodes,
            fault_prob: cell.fault_prob,
            correlation: cell.correlation.clone(),
            environment: cell.environment,
            samples_budget: cell.budget.monte_carlo_samples,
            engine: cell.engine,
            outcome,
            validation,
            epistemic,
            wall_ns,
        }
    }

    /// Decomposes the plan into work items plus, per cell, its `(start, len)` span
    /// in the item list (trajectory items follow the last cell span).
    fn work_items(&self) -> (Vec<WorkItem>, Vec<(usize, usize)>) {
        let mut items = Vec::new();
        let mut spans = Vec::with_capacity(self.cells.len());
        for (index, cell) in self.cells.iter().enumerate() {
            let start = items.len();
            if cell.engine == EngineChoice::MonteCarlo {
                for chunk in 0..chunk_count(cell.budget.monte_carlo_samples) {
                    items.push(WorkItem::McChunk { cell: index, chunk });
                }
            } else {
                items.push(WorkItem::Cell(index));
            }
            // Draw items live inside the cell's span, after the base items, so
            // the cell's countdown covers them and the merge can address them
            // positionally (span tail = draws in draw order).
            for draw in 0..cell.draws.len() {
                items.push(WorkItem::Draw { cell: index, draw });
            }
            spans.push((start, items.len() - start));
        }
        for index in 0..self.trajectories.len() {
            items.push(WorkItem::Trajectory(index));
        }
        (items, spans)
    }

    /// Estimated cost of a work item, in arbitrary comparable units. Only the
    /// *ordering* matters — largest first keeps a sweep's long poles from landing
    /// after the pool has drained — and the estimate never influences results.
    fn item_cost(&self, item: WorkItem) -> u64 {
        match item {
            WorkItem::McChunk { cell, chunk } => {
                let cell = &self.cells[cell];
                let count = chunk_len(cell.budget.monte_carlo_samples, chunk) as u64;
                let nodes = cell.nodes as u64;
                // The packed kernel retires ~64 scenarios per word pass; the
                // scalar kernel walks every node per scenario.
                match mc_kernel_kind(cell) {
                    McKernel::Packed => (count * nodes / 64).max(1),
                    _ => count * nodes,
                }
            }
            // A draw re-runs the whole cell on a scaled scenario, so it costs
            // what the base cell costs at its engine.
            WorkItem::Cell(index) | WorkItem::Draw { cell: index, .. } => {
                let cell = &self.cells[index];
                let nodes = cell.nodes as u64;
                match cell.engine {
                    // O(N²) closed form — the cheapest engine by far.
                    EngineChoice::Counting => nodes * nodes,
                    // Exponential in the cluster size (capped so the shift is sane).
                    EngineChoice::Enumeration => 1u64 << nodes.min(40),
                    // Pilot plus tilted sampling: scalar-sampler cost shape.
                    EngineChoice::ImportanceSampling | EngineChoice::MonteCarlo => {
                        cell.budget.monte_carlo_samples.max(1) as u64 * nodes
                    }
                    // Discrete-event trials; trial counts are budget-bounded and
                    // comparable to a sampling cell.
                    EngineChoice::Simulation => {
                        cell.budget.monte_carlo_samples.max(1) as u64 * nodes
                    }
                }
            }
            // Horizon-by-window sweeps of an exact engine: sized like a mid-range
            // sampling chunk so trajectories start early but never starve chunks.
            WorkItem::Trajectory(_) => 1 << 20,
        }
    }

    /// Executes one work item.
    fn run_item(&self, item: WorkItem) -> ItemOutput {
        match item {
            WorkItem::Cell(index) => {
                let cell = &self.cells[index];
                ItemOutput::Outcome(Box::new(run_prepared(
                    cell.model.as_ref(),
                    cell.scenario.as_scenario(),
                    &cell.budget,
                    cell.engine,
                    &cell.scratch,
                )))
            }
            WorkItem::McChunk { cell, chunk } => {
                let cell = &self.cells[cell];
                let count = chunk_len(cell.budget.monte_carlo_samples, chunk);
                let mut rng = StdRng::seed_from_u64(chunk_seed(cell.budget.seed, chunk as u64));
                let hits = match self.packed_kernel_for(cell) {
                    Some(kernel) => kernel.sample_chunk(&mut rng, count, cell.budget.mc_lane_words),
                    None => {
                        let target = cell.scratch.target(cell.scenario.as_scenario());
                        sample_chunk(cell.model.as_ref(), &target, count, &mut rng)
                    }
                };
                ItemOutput::Hits(hits)
            }
            WorkItem::Draw { cell, draw } => {
                let cell = &self.cells[cell];
                let draw = &cell.draws[draw];
                ItemOutput::Outcome(Box::new(run_prepared(
                    cell.model.as_ref(),
                    draw.scenario.as_scenario(),
                    &cell.budget,
                    cell.engine,
                    &draw.scratch,
                )))
            }
            WorkItem::Trajectory(index) => ItemOutput::Trajectory(trajectory_record(
                &self.trajectories[index],
                &self.time_axis,
            )),
        }
    }

    /// The packed kernel for a Monte Carlo cell when [`run_prepared`]'s kernel
    /// choice would use it — compiled at most once in the shared group scratch —
    /// or `None` when the cell samples through the scalar kernel.
    fn packed_kernel_for(&self, cell: &PlannedCell) -> Option<Arc<PackedKernel>> {
        if cell.budget.mc_kernel == McKernel::Scalar {
            return None;
        }
        let counting = cell.model.as_counting()?;
        Some(
            cell.scratch
                .packed_kernel(counting, cell.scenario.as_scenario()),
        )
    }
}

/// One executed cell: where it sits in the sweep, which engine (and kernel) ran,
/// and the full [`AnalysisOutcome`] with estimates and confidence intervals.
#[derive(Debug, Clone)]
pub struct CellRecord {
    /// Human-readable cell id (grid cells: `protocol/N=../p=../correlation`).
    pub label: String,
    /// Protocol label (grid cells) or model name (explicit cells).
    pub protocol: String,
    /// Cluster size.
    pub nodes: usize,
    /// The swept per-node fault probability (grid cells only).
    pub fault_prob: Option<f64>,
    /// Correlation-variant label.
    pub correlation: String,
    /// The fault environment this cell's empirical side runs under
    /// ([`Query::fault_environments`]; [`FaultEnvironment::Clean`] when the query
    /// has no environment axis). The analytic outcome is environment-blind.
    pub environment: FaultEnvironment,
    /// The sample budget this cell was allotted (sampling engines draw this many).
    pub samples_budget: usize,
    /// The engine the planner selected.
    pub engine: EngineChoice,
    /// The analysis result, including sampling estimates when an estimator ran.
    pub outcome: AnalysisOutcome,
    /// The paired analytic-vs-empirical check, when the query requested
    /// cross-validation ([`Query::validate_with_simulation`]) and this cell's
    /// model has an executable counterpart.
    pub validation: Option<ValidationRecord>,
    /// The second-order uncertainty report, when the query carried a posterior
    /// axis ([`Query::posterior`] with more than one draw): the epistemic
    /// credible interval over the posterior draws next to the base cell's
    /// aleatoric (sampling) interval.
    pub epistemic: Option<EpistemicReport>,
    /// Wall-clock nanoseconds spent executing this cell's scheduled work items,
    /// summed across items (sample chunks may run on different workers
    /// concurrently, so this is aggregate compute time, not elapsed sweep time;
    /// the paired validation run is included when one ran).
    pub wall_ns: u64,
}

impl CellRecord {
    /// The sampling kernel that drew this cell's samples (Monte Carlo cells only).
    pub fn kernel(&self) -> Option<McKernel> {
        self.outcome.monte_carlo.map(|mc| mc.kernel)
    }

    /// Samples actually drawn (sampling engines only; includes any rare-event ESS
    /// escalation).
    pub fn samples_drawn(&self) -> Option<usize> {
        self.outcome
            .monte_carlo
            .map(|mc| mc.samples)
            .or_else(|| self.outcome.rare_event.map(|re| re.samples))
    }

    /// Effective sample size (importance-sampling cells only).
    pub fn ess(&self) -> Option<f64> {
        self.outcome.rare_event.map(|re| re.ess)
    }

    /// The 95% interval bounds for one metric, when an estimator produced them.
    fn bounds(&self, metric: MetricKind) -> Option<(f64, f64)> {
        let pick = |safe: crate::montecarlo::Estimate,
                    live: crate::montecarlo::Estimate,
                    both: crate::montecarlo::Estimate| {
            let e = match metric {
                MetricKind::Safe => safe,
                MetricKind::Live => live,
                MetricKind::SafeAndLive => both,
            };
            (e.lower, e.upper)
        };
        if let Some(mc) = self.outcome.monte_carlo {
            Some(pick(mc.safe, mc.live, mc.safe_and_live))
        } else {
            self.outcome
                .rare_event
                .map(|re| pick(re.safe, re.live, re.safe_and_live))
        }
    }

    fn probability(&self, metric: MetricKind) -> f64 {
        match metric {
            MetricKind::Safe => self.outcome.report.safe.probability(),
            MetricKind::Live => self.outcome.report.live.probability(),
            MetricKind::SafeAndLive => self.outcome.report.safe_and_live.probability(),
        }
    }

    /// This one cell as a JSON value — exactly the element
    /// [`AnalysisReport::to_json_value`] puts in its `cells` array for this
    /// record (the report path delegates here), so streamed cells reassemble
    /// byte-identically into the one-shot report. `metrics` selects which
    /// guarantee objects are rendered, as in the report.
    pub fn to_json_value(&self, metrics: Metrics) -> JsonValue {
        let mut members = vec![
            ("label".to_string(), JsonValue::string(&self.label)),
            ("protocol".to_string(), JsonValue::string(&self.protocol)),
            ("nodes".to_string(), JsonValue::number(self.nodes as f64)),
            (
                "fault_prob".to_string(),
                JsonValue::optional(self.fault_prob),
            ),
            (
                "correlation".to_string(),
                JsonValue::string(&self.correlation),
            ),
            (
                "environment".to_string(),
                JsonValue::string(self.environment.label()),
            ),
            (
                "engine".to_string(),
                JsonValue::string(self.engine.to_string()),
            ),
            (
                "exact".to_string(),
                JsonValue::Bool(self.outcome.is_exact()),
            ),
            (
                "kernel".to_string(),
                self.kernel().map_or(JsonValue::Null, |k| {
                    JsonValue::string(format!("{k:?}").to_lowercase())
                }),
            ),
            (
                "samples".to_string(),
                JsonValue::optional(self.samples_drawn().map(|s| s as f64)),
            ),
            ("ess".to_string(), JsonValue::optional(self.ess())),
            (
                "wall_ns".to_string(),
                JsonValue::number(self.wall_ns as f64),
            ),
            (
                "validation".to_string(),
                self.validation.as_ref().map_or(JsonValue::Null, |v| {
                    JsonValue::Object(vec![
                        (
                            "empirical".to_string(),
                            JsonValue::number(v.simulation.safe_and_live.value),
                        ),
                        (
                            "lower".to_string(),
                            JsonValue::number(v.simulation.safe_and_live.lower),
                        ),
                        (
                            "upper".to_string(),
                            JsonValue::number(v.simulation.safe_and_live.upper),
                        ),
                        (
                            "trials".to_string(),
                            JsonValue::number(v.simulation.trials as f64),
                        ),
                        ("analytic".to_string(), JsonValue::number(v.analytic)),
                        ("z_score".to_string(), JsonValue::number(v.z_score)),
                        (
                            "environment".to_string(),
                            JsonValue::string(v.environment.label()),
                        ),
                        (
                            "divergence".to_string(),
                            v.divergence.map_or(JsonValue::Null, |d| {
                                JsonValue::Object(vec![
                                    (
                                        "direction".to_string(),
                                        JsonValue::string(d.direction.label()),
                                    ),
                                    ("magnitude".to_string(), JsonValue::number(d.magnitude)),
                                ])
                            }),
                        ),
                        (
                            "mean_messages_delivered".to_string(),
                            JsonValue::number(v.simulation.mean_messages_delivered),
                        ),
                        (
                            "mean_leader_changes".to_string(),
                            JsonValue::number(v.simulation.mean_leader_changes),
                        ),
                        (
                            "mean_decided_commands".to_string(),
                            JsonValue::number(v.simulation.mean_decided_commands),
                        ),
                        (
                            "total_gray_events".to_string(),
                            JsonValue::number(v.simulation.total_gray_events as f64),
                        ),
                        (
                            "total_net_events".to_string(),
                            JsonValue::number(v.simulation.total_net_events as f64),
                        ),
                    ])
                }),
            ),
        ];
        // Emitted only for second-order cells, so first-order reports stay
        // byte-identical to their pre-epistemic form.
        if let Some(epistemic) = &self.epistemic {
            members.push(("epistemic".to_string(), epistemic.to_json_value()));
        }
        for kind in metrics.enabled_kinds() {
            let (lower, upper) = match self.bounds(kind) {
                Some((lower, upper)) => (JsonValue::number(lower), JsonValue::number(upper)),
                None => (JsonValue::Null, JsonValue::Null),
            };
            members.push((
                kind.name().to_string(),
                JsonValue::Object(vec![
                    (
                        "value".to_string(),
                        JsonValue::number(self.probability(kind)),
                    ),
                    ("lower".to_string(), lower),
                    ("upper".to_string(), upper),
                ]),
            ));
        }
        JsonValue::Object(members)
    }

    /// This one cell as a single compact JSON line (no trailing newline) — the
    /// incremental writer path: a streaming server emits each completed cell as
    /// one NDJSON line instead of buffering a whole report. Numbers keep the
    /// module's bit-exact round-trip formatting; NaN/infinity render as `null`.
    pub fn to_json_line(&self, metrics: Metrics) -> String {
        self.to_json_value(metrics).to_compact_string()
    }
}

#[derive(Clone, Copy)]
enum MetricKind {
    Safe,
    Live,
    SafeAndLive,
}

impl MetricKind {
    fn name(&self) -> &'static str {
        match self {
            MetricKind::Safe => "safe",
            MetricKind::Live => "live",
            MetricKind::SafeAndLive => "safe_and_live",
        }
    }
}

/// The structured result set of an executed plan: one [`CellRecord`] per cell and
/// one [`TrajectoryRecord`] per time-domain cell, in query order, renderable as
/// plain-text [`Table`]s or as JSON.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    metrics: Metrics,
    cells: Vec<CellRecord>,
    trajectories: Vec<TrajectoryRecord>,
}

impl AnalysisReport {
    /// The executed cells, in query order.
    pub fn cells(&self) -> &[CellRecord] {
        &self.cells
    }

    /// The cell at `index` (query order).
    pub fn cell(&self, index: usize) -> &CellRecord {
        &self.cells[index]
    }

    /// The executed time-domain cells, in query order.
    pub fn trajectories(&self) -> &[TrajectoryRecord] {
        &self.trajectories
    }

    /// The trajectory record at `index` (query order).
    pub fn trajectory(&self, index: usize) -> &TrajectoryRecord {
        &self.trajectories[index]
    }

    /// The metric selection this report renders with.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// The cells whose paired validation flagged a [`Divergence`] — analytic and
    /// empirical disagree by more than [`DIVERGENCE_Z`] standard errors — in
    /// query order. Empty when no cell was validated or every validated cell
    /// agrees. The canonical consumer loop for environment sweeps: run the grid,
    /// then ask which cells the analytic engines got measurably wrong.
    pub fn divergent_cells(&self) -> Vec<&CellRecord> {
        self.cells
            .iter()
            .filter(|cell| {
                cell.validation
                    .as_ref()
                    .is_some_and(|v| v.divergence.is_some())
            })
            .collect()
    }

    /// A copy of the report with every cell's `wall_ns` zeroed — the one
    /// non-deterministic field. Byte-comparisons between runs (streamed vs.
    /// one-shot, concurrent vs. sequential) compare `zero_wall_clock()` outputs;
    /// everything else in a report is bit-identical by the determinism contract.
    pub fn zero_wall_clock(&self) -> AnalysisReport {
        let mut report = self.clone();
        for cell in &mut report.cells {
            cell.wall_ns = 0;
        }
        report
    }

    fn enabled_metrics(&self) -> Vec<MetricKind> {
        self.metrics.enabled_kinds()
    }

    /// Renders the report as a column-aligned plain-text table. When any cell
    /// carries a paired validation run, three extra columns report the empirical
    /// safe-and-live frequency, the analytic-vs-empirical z-score, and the
    /// divergence verdict — `ok` when the measurement is consistent with the
    /// prediction, or the signed gap (e.g. `-0.42 below`) when the cell is a
    /// flagged [`Divergence`] finding.
    pub fn to_table(&self, title: impl Into<String>) -> Table {
        let kinds = self.enabled_metrics();
        let validated = self.cells.iter().any(|c| c.validation.is_some());
        let second_order = self.cells.iter().any(|c| c.epistemic.is_some());
        let mut headers: Vec<&str> = vec!["cell", "engine"];
        for kind in &kinds {
            headers.push(match kind {
                MetricKind::Safe => "safe",
                MetricKind::Live => "live",
                MetricKind::SafeAndLive => "safe&live",
            });
        }
        headers.extend(["95% CI", "ESS", "wall"]);
        if second_order {
            headers.extend(["epistemic CI", "aleatoric CI"]);
        }
        if validated {
            headers.extend(["sim s&l", "z", "divergence"]);
        }
        let mut table = Table::new(title, &headers);
        for cell in &self.cells {
            let mut row = vec![cell.label.clone(), cell.engine.to_string()];
            for &kind in &kinds {
                row.push(crate::report::percent(cell.probability(kind)));
            }
            let ci_metric = *kinds.last().unwrap_or(&MetricKind::SafeAndLive);
            row.push(match cell.bounds(ci_metric) {
                Some((lower, upper)) => format!("[{lower:.3e}, {upper:.3e}]"),
                None => "exact".into(),
            });
            row.push(
                cell.ess()
                    .map_or_else(|| "-".into(), |ess| format!("{ess:.0}")),
            );
            row.push(format!("{:.2}ms", cell.wall_ns as f64 / 1e6));
            if second_order {
                match &cell.epistemic {
                    Some(e) => {
                        row.push(format!(
                            "[{:.6}, {:.6}]",
                            e.epistemic_lower, e.epistemic_upper
                        ));
                        row.push(format!(
                            "[{:.6}, {:.6}]",
                            e.aleatoric_lower, e.aleatoric_upper
                        ));
                    }
                    None => row.extend(["-".to_string(), "-".to_string()]),
                }
            }
            if validated {
                match &cell.validation {
                    Some(v) => {
                        row.push(crate::report::percent(v.simulation.safe_and_live.value));
                        row.push(format!("{:+.2}", v.z_score));
                        row.push(match v.divergence {
                            Some(d) => format!("{:+.3} {}", d.signed_gap(), d.direction),
                            None => "ok".to_string(),
                        });
                    }
                    None => row.extend(["-".to_string(), "-".to_string(), "-".to_string()]),
                }
            }
            table.push_row(row);
        }
        table
    }

    /// Renders the time-domain cells as a column-aligned plain-text table: one row
    /// per [`TrajectoryRecord`], with the operator metrics (worst point, first dip
    /// below target, steady-state availability, MTTF-to-threshold, unavailability
    /// minutes per year).
    pub fn to_trajectory_table(&self, title: impl Into<String>) -> Table {
        let mut table = Table::new(
            title,
            &[
                "cell",
                "kind",
                "points",
                "worst",
                "worst at (h)",
                "below target at (h)",
                "steady-state avail",
                "MTTF->threshold (h)",
                "unavail min/yr",
            ],
        );
        for record in &self.trajectories {
            let optional =
                |value: Option<f64>, fmt: fn(f64) -> String| value.map_or("-".into(), fmt);
            table.push_row(vec![
                record.label.clone(),
                record.kind.label().to_string(),
                record.points.len().to_string(),
                crate::report::percent(record.worst_probability),
                format!("{:.0}", record.worst_at_hours),
                optional(record.first_below_target_hours, |t| format!("{t:.0}")),
                optional(record.steady_state_availability, crate::report::percent),
                optional(record.mean_time_to_threshold_hours, |t| format!("{t:.3e}")),
                optional(record.unavailability_minutes_per_year, |m| {
                    format!("{m:.3}")
                }),
            ]);
        }
        table
    }

    /// The report as a JSON value tree (see [`crate::json`] for the number policy:
    /// probabilities serialize with full round-trip precision, non-finite values as
    /// `null`).
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "cells".to_string(),
                JsonValue::Array(
                    self.cells
                        .iter()
                        .map(|cell| cell.to_json_value(self.metrics))
                        .collect(),
                ),
            ),
            (
                "trajectories".to_string(),
                JsonValue::Array(
                    self.trajectories
                        .iter()
                        .map(TrajectoryRecord::to_json_value)
                        .collect(),
                ),
            ),
        ])
    }

    /// The report rendered as a JSON document.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::{analyze_auto, analyze_scenario};
    use crate::durability::PersistenceQuorumModel;
    use fault_model::mode::FaultProfile;

    #[test]
    fn grid_expands_in_axis_nesting_order() {
        let session = AnalysisSession::new();
        let query = Query::new()
            .protocols([ProtocolSpec::Raft, ProtocolSpec::Pbft])
            .nodes([5usize, 7])
            .fault_probs([0.01, 0.08]);
        assert_eq!(query.cell_count(), 8);
        let plan = session.plan(&query).expect("valid query");
        assert_eq!(plan.len(), 8);
        assert_eq!(plan.label(0), "raft/N=5/p=0.01/independent");
        assert_eq!(plan.label(3), "raft/N=7/p=0.08/independent");
        assert_eq!(plan.label(4), "pbft/N=5/p=0.01/independent");
        // All counting models on small independent deployments: exact counting.
        assert!(plan.engines().iter().all(|&e| e == EngineChoice::Counting));
    }

    #[test]
    fn planned_cells_match_per_cell_front_door_bit_for_bit() {
        let session = AnalysisSession::new();
        let query = Query::new()
            .protocols([ProtocolSpec::Raft])
            .nodes([3usize, 5])
            .fault_probs([0.01, 0.05])
            .correlations([
                CorrelationSpec::Independent,
                CorrelationSpec::ClusterShock { probability: 0.01 },
            ])
            .budget(Budget::default().with_samples(10_000).with_seed(7));
        let report = session.run(&query).expect("valid query");
        let mut index = 0;
        for &n in &[3usize, 5] {
            for &p in &[0.01, 0.05] {
                for corr in &[
                    CorrelationSpec::Independent,
                    CorrelationSpec::ClusterShock { probability: 0.01 },
                ] {
                    let model = RaftModel::standard(n);
                    let deployment = Deployment::uniform_crash(n, p);
                    let budget = Budget::default().with_samples(10_000).with_seed(7);
                    let expected = match corr.apply(deployment) {
                        ScenarioSpec::Independent(d) => analyze_auto(&model, &d, &budget),
                        ScenarioSpec::Correlated(c) => {
                            analyze_scenario(&model, Scenario::Correlated(&c), &budget)
                                .expect("well-formed")
                        }
                    };
                    assert_eq!(
                        report.cell(index).outcome,
                        expected,
                        "cell {index} ({}) diverged from the per-cell front door",
                        report.cell(index).label
                    );
                    index += 1;
                }
            }
        }
        assert_eq!(index, report.cells().len());
    }

    /// Tentpole pin: the work-stealing decomposition (chunked Monte Carlo cells,
    /// whole exact and importance-sampling cells, trajectory items, the validation
    /// wave) produces a report byte-identical — JSON with wall times zeroed — to a
    /// sequential per-cell loop over the same plan, for both the packed and the
    /// pinned-scalar sampling kernels.
    #[test]
    fn scheduled_execution_matches_a_sequential_per_cell_loop_byte_for_byte() {
        for kernel in [McKernel::Auto, McKernel::Scalar] {
            let session = AnalysisSession::new();
            let query = Query::new()
                .protocols([ProtocolSpec::Raft])
                .nodes([5usize])
                .fault_probs([0.05])
                .correlations([
                    CorrelationSpec::Independent,
                    CorrelationSpec::ClusterShock { probability: 0.01 },
                ])
                .samples_sweep([9_000usize, 20_000])
                .budget(Budget::default().with_seed(11).with_mc_kernel(kernel))
                .validate_with_simulation()
                .cell(
                    "durability",
                    Arc::new(PersistenceQuorumModel::new(24, (0..4).collect())),
                    Deployment::uniform_crash(24, 0.05),
                )
                .repairable_cell("repairable-3", RepairableGroup::new(3, 1e-3, 1e-2, 1));
            let plan = session.plan(&query).expect("valid query");
            let engines = plan.engines();
            assert!(
                engines.contains(&EngineChoice::Counting)
                    && engines.contains(&EngineChoice::MonteCarlo),
                "the sweep must mix exact and sampling cells, got {engines:?}"
            );
            let mut scheduled = plan.execute();
            // Sequential reference: every cell whole, in query order, on this thread.
            let cells: Vec<CellRecord> = plan
                .cells
                .iter()
                .map(|cell| {
                    let outcome = run_prepared(
                        cell.model.as_ref(),
                        cell.scenario.as_scenario(),
                        &cell.budget,
                        cell.engine,
                        &cell.scratch,
                    );
                    let validation = cell.validate.then(|| {
                        validation_record(
                            cell.model.as_ref(),
                            cell.scenario.as_scenario(),
                            &cell.budget,
                            outcome.report.safe_and_live.probability(),
                        )
                    });
                    CellRecord {
                        label: cell.label.clone(),
                        protocol: cell.protocol.clone(),
                        nodes: cell.nodes,
                        fault_prob: cell.fault_prob,
                        correlation: cell.correlation.clone(),
                        environment: cell.environment,
                        samples_budget: cell.budget.monte_carlo_samples,
                        engine: cell.engine,
                        outcome,
                        validation,
                        epistemic: None,
                        wall_ns: 0,
                    }
                })
                .collect();
            let reference = AnalysisReport {
                metrics: plan.metrics,
                cells,
                trajectories: plan
                    .trajectories
                    .iter()
                    .map(|spec| trajectory_record(spec, &plan.time_axis))
                    .collect(),
            };
            for cell in &mut scheduled.cells {
                cell.wall_ns = 0;
            }
            assert_eq!(
                scheduled.to_json(),
                reference.to_json(),
                "kernel {kernel:?}: scheduled sweep diverged from the per-cell loop"
            );
        }
    }

    #[test]
    fn samples_sweep_replicates_cells_and_shares_the_group() {
        let session = AnalysisSession::new();
        let query = Query::new()
            .protocols([ProtocolSpec::Raft])
            .nodes([5usize])
            .fault_probs([0.05])
            .correlations([CorrelationSpec::ClusterShock { probability: 0.02 }])
            .samples_sweep([1_000usize, 5_000, 20_000])
            .budget(Budget::default().with_seed(3));
        let report = session.run(&query).expect("valid query");
        assert_eq!(report.cells().len(), 3);
        for (cell, &samples) in report.cells().iter().zip(&[1_000usize, 5_000, 20_000]) {
            assert_eq!(cell.samples_budget, samples);
            assert_eq!(cell.engine, EngineChoice::MonteCarlo);
            assert_eq!(cell.samples_drawn(), Some(samples));
            assert_eq!(cell.kernel(), Some(McKernel::Packed));
        }
        // Wider budgets should not widen the interval.
        let widths: Vec<f64> = report
            .cells()
            .iter()
            .map(|c| c.outcome.monte_carlo.unwrap().safe_and_live.half_width())
            .collect();
        assert!(widths[0] > widths[2]);
    }

    #[test]
    fn explicit_cells_cover_placement_sensitive_models() {
        let session = AnalysisSession::new();
        let model: Arc<dyn ProtocolModel + Send + Sync> =
            Arc::new(PersistenceQuorumModel::new(24, (0..4).collect()));
        let query = Query::new()
            .cell(
                "durability",
                model.clone(),
                Deployment::uniform_crash(24, 0.05),
            )
            .budget(Budget::default().with_samples(30_000).with_seed(13));
        let plan = session.plan(&query).expect("valid query");
        assert_eq!(plan.engines(), vec![EngineChoice::ImportanceSampling]);
        let report = plan.execute();
        let cell = report.cell(0);
        assert_eq!(cell.label, "durability");
        assert!(cell.ess().expect("importance sampling ran") > 0.0);
        let expected = analyze_auto(
            model.as_ref(),
            &Deployment::uniform_crash(24, 0.05),
            &Budget::default().with_samples(30_000).with_seed(13),
        );
        assert_eq!(cell.outcome, expected);
    }

    #[test]
    fn invalid_budgets_are_rejected_at_plan_time() {
        let session = AnalysisSession::new();
        let base = Query::new()
            .protocols([ProtocolSpec::Raft])
            .nodes([3usize])
            .fault_probs([0.01]);
        let nan_tilt = Budget {
            rare_event_tilt: f64::NAN,
            ..Budget::default()
        };
        let err = session
            .plan(&base.clone().budget(nan_tilt))
            .expect_err("NaN tilt must be rejected");
        assert!(matches!(
            err,
            AnalysisError::InvalidBudget(crate::engine::InvalidBudget::RareEventTilt(_))
        ));
        let zero_ess = Budget {
            min_effective_samples: 0.0,
            ..Budget::default()
        };
        assert!(session.plan(&base.clone().budget(zero_ess)).is_err());
        let bad_threshold = Budget {
            rare_event_threshold: 0.0,
            ..Budget::default()
        };
        let err = session
            .plan(&base.budget(bad_threshold))
            .expect_err("threshold outside (0,1) must be rejected");
        assert!(err.to_string().contains("rare_event_threshold"));
    }

    #[test]
    fn malformed_cells_yield_clear_errors() {
        let session = AnalysisSession::new();
        // Size mismatch between an explicit model and its scenario.
        let model: Arc<dyn ProtocolModel + Send + Sync> = Arc::new(RaftModel::standard(3));
        let query = Query::new().cell(
            "mismatch",
            model.clone(),
            Deployment::uniform_crash(4, 0.01),
        );
        assert_eq!(
            session.plan(&query).unwrap_err(),
            AnalysisError::SizeMismatch {
                model_nodes: 3,
                scenario_nodes: 4
            }
        );
        // An empty correlated scenario.
        let query =
            Query::new().cell_correlated("empty", model, CorrelationModel::independent(Vec::new()));
        assert_eq!(
            session.plan(&query).unwrap_err(),
            AnalysisError::EmptyScenario
        );
    }

    #[test]
    fn logspace_spans_the_requested_decades() {
        let points = logspace(1e-6, 1e-1, 25);
        assert_eq!(points.len(), 25);
        assert!((points[0] - 1e-6).abs() < 1e-18);
        assert!((points[24] - 1e-1).abs() < 1e-12);
        assert!(points.windows(2).all(|w| w[0] < w[1]));
        // Log-even spacing: constant ratio between neighbours.
        let r0 = points[1] / points[0];
        let r23 = points[24] / points[23];
        assert!((r0 - r23).abs() < 1e-9);
        assert_eq!(logspace(0.5, 0.5, 1), vec![0.5]);
    }

    #[test]
    fn report_table_and_json_render_every_cell() {
        let session = AnalysisSession::new();
        let query = Query::new()
            .protocols([ProtocolSpec::Raft])
            .nodes([3usize, 5])
            .fault_probs([0.01]);
        let report = session.run(&query).expect("valid query");
        let table = report.to_table("sweep");
        assert_eq!(table.num_rows(), 2);
        assert!(table.rows()[0][1].contains("counting"));
        let parsed = JsonValue::parse(&report.to_json()).expect("valid JSON");
        let cells = parsed.get("cells").unwrap().as_array().unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(
            cells[0].get("engine").and_then(JsonValue::as_str),
            Some("counting")
        );
        // Exact cells have null interval bounds and null ESS.
        assert!(cells[0]
            .get("safe_and_live")
            .unwrap()
            .get("lower")
            .unwrap()
            .is_null());
        assert!(cells[0].get("ess").unwrap().is_null());
        // Probabilities round-trip bit-exactly through the JSON text.
        let value = cells[0]
            .get("safe_and_live")
            .unwrap()
            .get("value")
            .and_then(JsonValue::as_f64)
            .unwrap();
        assert_eq!(
            value.to_bits(),
            report
                .cell(0)
                .outcome
                .report
                .safe_and_live
                .probability()
                .to_bits()
        );
    }

    #[test]
    fn metrics_filter_report_columns() {
        let session = AnalysisSession::new();
        let query = Query::new()
            .protocols([ProtocolSpec::Raft])
            .nodes([3usize])
            .fault_probs([0.01])
            .metrics(Metrics {
                safe: false,
                live: false,
                safe_and_live: true,
            });
        let report = session.run(&query).expect("valid query");
        let json = report.to_json();
        assert!(json.contains("\"safe_and_live\""));
        assert!(!json.contains("\"live\":"));
        let table = report.to_table("s&l only");
        assert_eq!(table.rows()[0].len(), 6); // cell, engine, s&l, CI, ESS, wall
    }

    #[test]
    fn session_scratch_is_shared_across_plans() {
        let session = AnalysisSession::new();
        let query = Query::new()
            .protocols([ProtocolSpec::Raft])
            .nodes([40usize])
            .fault_probs([0.02])
            .correlations([CorrelationSpec::RackShock {
                racks: 4,
                probability: 0.01,
            }])
            .budget(Budget::default().with_samples(5_000));
        let first = session.run(&query).expect("valid query");
        let second = session.run(&query).expect("valid query");
        assert_eq!(first.cell(0).outcome, second.cell(0).outcome);
        // One group signature in the session cache despite two plans: the
        // second plan's lookup is a hit, not a second resident entry.
        let stats = session.cache_stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.misses, 1);
        assert!(stats.hits >= 1);
    }

    #[test]
    fn streaming_emits_every_record_exactly_once_and_matches_the_report() {
        struct Collector {
            cells: Mutex<Vec<(usize, CellRecord)>>,
            trajectories: Mutex<Vec<(usize, TrajectoryRecord)>>,
        }
        impl StreamSink for Collector {
            fn on_cell(&self, index: usize, record: &CellRecord) {
                self.cells.lock().unwrap().push((index, record.clone()));
            }
            fn on_trajectory(&self, index: usize, record: &TrajectoryRecord) {
                self.trajectories
                    .lock()
                    .unwrap()
                    .push((index, record.clone()));
            }
        }
        let session = AnalysisSession::new();
        let query = Query::new()
            .protocols([ProtocolSpec::Raft, ProtocolSpec::Pbft])
            .nodes([4usize, 16])
            .fault_probs([0.01, 0.05])
            .repairable_cell("repairable", RepairableGroup::new(5, 1e-4, 0.1, 2))
            .budget(Budget::default().with_samples(20_000));
        let plan = session.plan(&query).expect("valid query");
        let sink = Collector {
            cells: Mutex::new(Vec::new()),
            trajectories: Mutex::new(Vec::new()),
        };
        let streamed = plan.execute_streaming(&sink);
        let oneshot = plan.execute();

        // The streamed report equals a plain execution of the same plan.
        assert_eq!(streamed.cells().len(), oneshot.cells().len());
        for (a, b) in streamed.cells().iter().zip(oneshot.cells()) {
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.label, b.label);
        }

        // Every cell was emitted exactly once, and each emitted record is the
        // record the report contains (reassembly by index reproduces the report).
        let mut cells = sink.cells.into_inner().unwrap();
        assert_eq!(cells.len(), streamed.cells().len());
        cells.sort_by_key(|(index, _)| *index);
        for (position, (index, record)) in cells.iter().enumerate() {
            assert_eq!(position, *index, "each index emitted exactly once");
            let in_report = streamed.cell(*index);
            assert_eq!(record.outcome, in_report.outcome);
            assert_eq!(record.wall_ns, in_report.wall_ns);
        }
        let trajectories = sink.trajectories.into_inner().unwrap();
        assert_eq!(trajectories.len(), 1);
        assert_eq!(trajectories[0].0, 0);
        assert_eq!(
            trajectories[0].1.points.len(),
            streamed.trajectory(0).points.len()
        );
    }

    #[test]
    fn identical_explicit_cells_share_one_compiled_kernel() {
        // The scratch-key blind spot fix: two *separate* requests for the same
        // explicit (model, scenario) — the dominant server workload — must hit
        // one cache entry and therefore share one compiled kernel / proposal.
        let session = AnalysisSession::new();
        let model = Arc::new(RaftModel::standard(5));
        let query = Query::new()
            .cell(
                "explicit raft",
                model.clone(),
                Deployment::uniform_crash(5, 0.02),
            )
            .budget(Budget::default().with_samples(5_000));
        let first = session.run(&query).expect("valid query");
        let second = session.run(&query).expect("valid query");
        assert_eq!(first.cell(0).outcome, second.cell(0).outcome);
        let stats = session.cache_stats();
        assert_eq!(stats.entries, 1, "one content signature, one entry");
        assert_eq!(stats.misses, 1, "second request must not re-insert");
        assert!(stats.hits >= 1, "second request must hit");
    }

    #[test]
    fn distinct_explicit_models_never_share_scratch() {
        // Signature-collision safety: two placement-sensitive durability models
        // over the same deployment but different quorum members are different
        // content, so they must get distinct cache entries.
        let session = AnalysisSession::new();
        let deployment = Deployment::uniform_crash(6, 0.05);
        let query = Query::new()
            .cell(
                "quorum 012",
                Arc::new(crate::durability::PersistenceQuorumModel::new(
                    6,
                    vec![0, 1, 2],
                )),
                deployment.clone(),
            )
            .cell(
                "quorum 345",
                Arc::new(crate::durability::PersistenceQuorumModel::new(
                    6,
                    vec![3, 4, 5],
                )),
                deployment,
            )
            .budget(Budget::default().with_samples(2_000));
        let report = session.run(&query).expect("valid query");
        assert_eq!(report.cells().len(), 2);
        let stats = session.cache_stats();
        assert_eq!(stats.entries, 2, "distinct models, distinct entries");
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn tight_capacity_session_evicts_without_changing_results() {
        // Three scratch groups (three correlation variants) through a session
        // bounded to one resident entry: the cache must thrash, and thrashing
        // must be invisible in the results — scratch is a pure cache, so
        // eviction can only cost recomputation, never change a number.
        let query = Query::new()
            .protocols([ProtocolSpec::Raft])
            .nodes([9usize])
            .fault_probs([0.02])
            .correlations([
                CorrelationSpec::ClusterShock { probability: 0.01 },
                CorrelationSpec::ClusterShock { probability: 0.05 },
                CorrelationSpec::RackShock {
                    racks: 3,
                    probability: 0.01,
                },
            ])
            .budget(Budget::default().with_samples(5_000));
        let tight = AnalysisSession::with_cache_capacity(1);
        let first = tight.run(&query).expect("valid query");
        let second = tight.run(&query).expect("valid query");
        let reference = AnalysisSession::new().run(&query).expect("valid query");
        for index in 0..reference.cells().len() {
            assert_eq!(first.cell(index).outcome, reference.cell(index).outcome);
            assert_eq!(second.cell(index).outcome, reference.cell(index).outcome);
        }
        let stats = tight.cache_stats();
        assert!(
            stats.evictions > 0,
            "three groups through one slot must evict"
        );
        assert!(stats.entries <= 1, "the capacity bound must hold");
    }

    #[test]
    fn concurrent_executes_match_sequential_results() {
        // The service contract: many plans in flight against one shared session
        // (interleaved lookups, inserts and evictions in the scratch cache)
        // must produce exactly the outcomes a quiet sequential session does.
        let queries: Vec<Query> = vec![
            Query::new()
                .protocols([ProtocolSpec::Raft, ProtocolSpec::Pbft])
                .nodes([5usize, 9])
                .fault_probs([0.02])
                .budget(Budget::default().with_samples(5_000)),
            Query::new()
                .protocols([ProtocolSpec::Raft])
                .nodes([7usize])
                .fault_probs([0.01, 0.05])
                .correlations([CorrelationSpec::ClusterShock { probability: 0.02 }])
                .budget(Budget::default().with_samples(5_000)),
            Query::new()
                .cell(
                    "pq",
                    Arc::new(crate::durability::PersistenceQuorumModel::new(
                        6,
                        vec![0, 1, 2],
                    )),
                    Deployment::uniform_crash(6, 0.05),
                )
                .budget(Budget::default().with_samples(2_000)),
        ];
        let expected: Vec<AnalysisReport> = queries
            .iter()
            .map(|q| AnalysisSession::new().run(q).expect("valid query"))
            .collect();
        let session = AnalysisSession::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|worker: usize| {
                    let session = &session;
                    let queries = &queries;
                    scope.spawn(move || {
                        // Each worker walks the queries from a different start
                        // so distinct plans overlap in time.
                        (0..queries.len())
                            .map(|step| {
                                let index = (worker + step) % queries.len();
                                (index, session.run(&queries[index]).expect("valid query"))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                for (index, report) in handle.join().expect("worker panicked") {
                    let reference = &expected[index];
                    assert_eq!(report.cells().len(), reference.cells().len());
                    for cell in 0..reference.cells().len() {
                        assert_eq!(
                            report.cell(cell).outcome,
                            reference.cell(cell).outcome,
                            "query {index} cell {cell} diverged under concurrency"
                        );
                    }
                }
            }
        });
        let stats = session.cache_stats();
        assert!(stats.hits > 0, "repeated plans must share scratch");
    }

    #[test]
    fn time_axis_samples_include_both_endpoints() {
        let axis = TimeAxis::new(1_000.0, 250.0);
        assert_eq!(axis.sample_times(), vec![0.0, 250.0, 500.0, 750.0, 1_000.0]);
        assert_eq!(axis.window_hours, 250.0);
        // A zero horizon still samples t = 0 (the "now" guarantee).
        assert_eq!(TimeAxis::new(0.0, 10.0).sample_times(), vec![0.0]);
        // A step larger than the horizon samples t = 0 only.
        assert_eq!(TimeAxis::new(5.0, 10.0).sample_times(), vec![0.0]);
    }

    #[test]
    fn time_axis_sampling_survives_float_drift() {
        // Regression: `t += step` accumulation dropped the horizon sample for
        // steps that are not exactly representable (0.3 / 0.1 < 3.0 in f64).
        let times = TimeAxis::new(0.3, 0.1).sample_times();
        assert_eq!(
            times.len(),
            4,
            "0, 0.1, 0.2, 0.3 — horizon included: {times:?}"
        );
        assert!((times[3] - 0.3).abs() < 1e-12);
        // A year of 0.1-hour steps: exactly 87,661 samples, last at the horizon.
        let times = TimeAxis::new(8_766.0, 0.1).sample_times();
        assert_eq!(times.len(), 87_661);
        assert!((times.last().unwrap() - 8_766.0).abs() < 1e-9);
        // The fleet-trajectory sampler shares the fix.
        use fault_model::node::Fleet;
        let traj = crate::timevarying::reliability_trajectory(
            &RaftModel::standard(3),
            &Fleet::homogeneous_crash(3, 0.01),
            0.1,
            0.3,
            0.1,
        );
        assert_eq!(traj.len(), 4);
        assert!((traj.last().unwrap().at_hours - 0.3).abs() < 1e-12);
    }

    #[test]
    fn struct_literal_time_axes_are_validated_at_plan_time() {
        // The axis fields are public, so a zero step can bypass the constructor
        // asserts; planning must reject it instead of looping forever in
        // sample_times on a pool worker.
        let session = AnalysisSession::new();
        let bad_axis = TimeAxis {
            horizon_hours: 1e4,
            step_hours: 0.0,
            window_hours: 1.0,
            target_nines: None,
        };
        let query = Query::new()
            .time_horizon(bad_axis)
            .repairable_cell("r", RepairableGroup::new(3, 1e-3, 1e-2, 1));
        assert_eq!(
            session.plan(&query).unwrap_err(),
            AnalysisError::InvalidTimeAxis
        );
        let nan_window = TimeAxis {
            window_hours: f64::NAN,
            ..TimeAxis::new(100.0, 10.0)
        };
        assert!(session
            .plan(&Query::new().time_horizon(nan_window))
            .is_err());
    }

    #[test]
    fn fault_windows_past_the_horizon_are_rejected_at_plan_time() {
        use crate::engine::SimBudget;
        // A fault window longer than the horizon would silently drop the late
        // faults (the simulator never processes events past the deadline),
        // biasing every empirical rate upward.
        let session = AnalysisSession::new();
        let bad = Budget {
            sim: SimBudget {
                horizon_millis: 1_000,
                fault_window_millis: 5_000,
                ..SimBudget::default()
            },
            ..Budget::default()
        };
        let query = Query::new()
            .protocols([ProtocolSpec::Raft])
            .nodes([3usize])
            .fault_probs([0.01])
            .budget(bad);
        let err = session.plan(&query).expect_err("oversized window rejected");
        assert!(err.to_string().contains("fault_window"), "{err}");
    }

    #[test]
    fn repairable_cell_produces_a_full_trajectory_record() {
        let session = AnalysisSession::new();
        let report = session
            .run(
                &Query::new()
                    .time_horizon(TimeAxis::new(40_000.0, 10_000.0).with_target_nines(2.0))
                    .repairable_cell("group", RepairableGroup::new(3, 1e-3, 1e-2, 1)),
            )
            .expect("well-formed query");
        assert!(report.cells().is_empty());
        assert_eq!(report.trajectories().len(), 1);
        let record = report.trajectory(0);
        assert_eq!(record.kind, TrajectoryKind::Repairable);
        assert_eq!(record.points.len(), 5);
        assert_eq!(record.points[0].probability, 1.0);
        // R(t) decreases monotonically toward absorption.
        assert!(record
            .points
            .windows(2)
            .all(|w| w[1].probability <= w[0].probability + 1e-12));
        // At these rates the threshold is eventually exceeded: the target dips.
        assert!(record.first_below_target_hours.is_some());
        assert_eq!(record.worst_probability, record.points[4].probability);
        let availability = record.steady_state_availability.expect("repairable cell");
        assert!(availability > 0.9 && availability < 1.0);
        let minutes = record
            .unavailability_minutes_per_year
            .expect("repairable cell");
        assert!((minutes - (1.0 - availability) * 8766.0 * 60.0).abs() < 1e-6);
        assert!(record.mean_time_to_threshold_hours.unwrap() > 0.0);
    }

    #[test]
    fn fleet_trajectory_cell_matches_the_timevarying_helpers() {
        use fault_model::metrics::HOURS_PER_YEAR;
        use fault_model::node::NodeSpec;
        let fleet: fault_model::node::Fleet = (0..5)
            .map(|i| {
                NodeSpec::with_constant_crash(i, 0.0, HOURS_PER_YEAR)
                    .with_crash_curve(std::sync::Arc::new(fault_model::curve::WeibullCurve::new(
                        3.0, 70_000.0,
                    )))
                    .with_age(10_000.0)
            })
            .collect();
        let axis = TimeAxis::new(4.0 * HOURS_PER_YEAR, HOURS_PER_YEAR)
            .with_window(HOURS_PER_YEAR / 4.0)
            .with_target_nines(3.0);
        let model: Arc<dyn ProtocolModel + Send + Sync> = Arc::new(RaftModel::standard(5));
        let report = AnalysisSession::new()
            .run(&Query::new().time_horizon(axis).trajectory_cell(
                "aging-fleet",
                model,
                fleet.clone(),
            ))
            .expect("well-formed query");
        let record = report.trajectory(0);
        assert_eq!(record.kind, TrajectoryKind::Fleet);
        let reference = crate::timevarying::reliability_trajectory(
            &RaftModel::standard(5),
            &fleet,
            HOURS_PER_YEAR / 4.0,
            4.0 * HOURS_PER_YEAR,
            HOURS_PER_YEAR,
        );
        assert_eq!(record.points.len(), reference.len());
        for (point, expected) in record.points.iter().zip(&reference) {
            assert_eq!(point.at_hours, expected.at_hours);
            assert_eq!(
                point.probability,
                expected.report.safe_and_live.probability()
            );
        }
        let summary = crate::timevarying::summarize(&reference, 3.0).unwrap();
        assert_eq!(record.worst_probability, summary.worst_probability);
        assert_eq!(
            record.first_below_target_hours,
            crate::timevarying::first_time_below_target(&reference, 3.0)
        );
        assert!(record.steady_state_availability.is_none());
    }

    #[test]
    fn trajectory_records_render_to_table_and_json() {
        let session = AnalysisSession::new();
        let report = session
            .run(
                &Query::new()
                    .time_horizon(TimeAxis::new(20_000.0, 10_000.0))
                    .repairable_cell("r1", RepairableGroup::new(3, 1e-3, 1e-2, 1)),
            )
            .expect("well-formed query");
        let table = report.to_trajectory_table("time domain");
        assert_eq!(table.num_rows(), 1);
        assert_eq!(table.rows()[0][0], "r1");
        assert_eq!(table.rows()[0][1], "repairable");
        assert_eq!(table.rows()[0][2], "3");
        let parsed = JsonValue::parse(&report.to_json()).expect("valid JSON");
        let trajectories = parsed.get("trajectories").unwrap().as_array().unwrap();
        assert_eq!(trajectories.len(), 1);
        let record = &trajectories[0];
        assert_eq!(
            record.get("kind").and_then(JsonValue::as_str),
            Some("repairable")
        );
        let points = record.get("points").unwrap().as_array().unwrap();
        assert_eq!(points.len(), 3);
        // Probabilities round-trip bit-exactly through the JSON text.
        let p0 = points[0]
            .get("probability")
            .and_then(JsonValue::as_f64)
            .unwrap();
        assert_eq!(
            p0.to_bits(),
            report.trajectory(0).points[0].probability.to_bits()
        );
        // No target was set: the target fields serialize as null.
        assert!(record.get("target_nines").unwrap().is_null());
        assert!(record.get("first_below_target_hours").unwrap().is_null());
    }

    #[test]
    fn malformed_trajectory_cells_fail_at_plan_time() {
        use fault_model::node::Fleet;
        let session = AnalysisSession::new();
        // Placement-sensitive models have no counting view: rejected.
        let durability: Arc<dyn ProtocolModel + Send + Sync> =
            Arc::new(PersistenceQuorumModel::new(5, vec![0, 1]));
        let query = Query::new().trajectory_cell(
            "not-counting",
            durability,
            Fleet::homogeneous_crash(5, 0.01),
        );
        assert_eq!(
            session.plan(&query).unwrap_err(),
            AnalysisError::TrajectoryNotCounting
        );
        // Model/fleet size mismatch.
        let raft: Arc<dyn ProtocolModel + Send + Sync> = Arc::new(RaftModel::standard(3));
        let query = Query::new().trajectory_cell(
            "mismatch",
            raft.clone(),
            Fleet::homogeneous_crash(5, 0.01),
        );
        assert_eq!(
            session.plan(&query).unwrap_err(),
            AnalysisError::SizeMismatch {
                model_nodes: 3,
                scenario_nodes: 5
            }
        );
        // An empty fleet.
        let query = Query::new().trajectory_cell("empty", raft, Fleet::new());
        assert_eq!(
            session.plan(&query).unwrap_err(),
            AnalysisError::EmptyScenario
        );
    }

    #[test]
    fn validation_mode_pairs_executable_cells_with_simulation() {
        use crate::engine::{FaultEnvironment, SimBudget};
        let session = AnalysisSession::new();
        let model: Arc<dyn ProtocolModel + Send + Sync> =
            Arc::new(PersistenceQuorumModel::new(24, (0..4).collect()));
        let query = Query::new()
            .protocols([ProtocolSpec::Raft])
            .nodes([3usize])
            .fault_probs([0.2])
            .cell("abstract", model, Deployment::uniform_crash(24, 0.05))
            .budget(
                Budget::default()
                    .with_samples(20_000)
                    .with_seed(5)
                    .with_sim(SimBudget {
                        trials: 40,
                        horizon_millis: 2_000,
                        fault_window_millis: 150,
                        commands: 2,
                        environment: FaultEnvironment::Clean,
                    }),
            )
            .validate_with_simulation();
        let report = session.run(&query).expect("well-formed query");
        // The Raft grid cell is executable: it carries a validation record whose
        // empirical rate tracks the analytic prediction.
        let validated = report.cell(0).validation.expect("raft cell validated");
        assert_eq!(validated.simulation.trials, 40);
        assert!(
            validated.agrees_within(4.0),
            "analytic {} vs empirical {} (z = {:.2})",
            validated.analytic,
            validated.simulation.safe_and_live.value,
            validated.z_score
        );
        assert_eq!(
            validated.analytic,
            report.cell(0).outcome.report.safe_and_live.probability()
        );
        // The placement-sensitive cell has no executable counterpart: no pairing.
        assert!(report.cell(1).validation.is_none());
        // Rendering: the validation columns appear, with "-" for unpaired cells.
        let table = report.to_table("validated");
        // cell, engine, safe, live, safe&live, CI, ESS, wall, sim s&l, z, divergence.
        assert_eq!(table.rows()[0].len(), 11);
        assert_ne!(table.rows()[0][8], "-");
        assert_eq!(table.rows()[1][8], "-");
        assert_eq!(table.rows()[1][10], "-");
        // JSON: validation object on the paired cell, null on the other.
        let parsed = JsonValue::parse(&report.to_json()).expect("valid JSON");
        let cells = parsed.get("cells").unwrap().as_array().unwrap();
        let v = cells[0].get("validation").unwrap();
        assert!(v.get("z_score").unwrap().as_f64().is_some());
        assert_eq!(v.get("trials").and_then(JsonValue::as_f64), Some(40.0));
        assert!(cells[1].get("validation").unwrap().is_null());
    }

    #[test]
    fn validation_is_deterministic_across_runs_and_thread_counts() {
        use crate::engine::{FaultEnvironment, SimBudget};
        let query = Query::new()
            .protocols([ProtocolSpec::Raft])
            .nodes([3usize])
            .fault_probs([0.15])
            .budget(Budget::default().with_seed(9).with_sim(SimBudget {
                trials: 24,
                horizon_millis: 1_500,
                fault_window_millis: 100,
                commands: 2,
                environment: FaultEnvironment::Clean,
            }))
            .validate_with_simulation();
        let reference = AnalysisSession::with_threads(1)
            .run(&query)
            .expect("well-formed query");
        for threads in [2usize, 8] {
            let report = AnalysisSession::with_threads(threads)
                .run(&query)
                .expect("well-formed query");
            assert_eq!(
                report.cell(0).validation,
                reference.cell(0).validation,
                "validation diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn gray_primary_environment_cells_are_flagged_as_divergent() {
        use crate::engine::{FaultEnvironment, SimBudget};
        // The acceptance cell of the fault-environment axis: the analytic
        // engines see a near-perfect crash-only deployment, while the executable
        // cluster's pinned leader goes gray and liveness collapses. The gap must
        // surface as a first-class divergence finding — helper, table and JSON —
        // not stay buried in a raw z column.
        let query = Query::new()
            .protocols([ProtocolSpec::Raft])
            .nodes([5usize])
            .fault_probs([0.01])
            .fault_environments([FaultEnvironment::Clean, FaultEnvironment::GrayPrimary])
            .budget(Budget::default().with_seed(13).with_sim(SimBudget {
                trials: 32,
                horizon_millis: 2_000,
                fault_window_millis: 150,
                commands: 2,
                environment: FaultEnvironment::Clean,
            }))
            .validate_with_simulation();
        assert_eq!(query.cell_count(), 2);
        let report = AnalysisSession::new()
            .run(&query)
            .expect("well-formed query");
        // The clean cell agrees: both sides see the same crash-only world.
        let clean_cell = report.cell(0);
        assert_eq!(clean_cell.environment, FaultEnvironment::Clean);
        let clean = clean_cell.validation.expect("clean cell validated");
        assert!(
            clean.divergence.is_none(),
            "clean cell must agree, got z = {:.2}",
            clean.z_score
        );
        // The gray cell diverges in the dangerous direction.
        let gray_cell = report.cell(1);
        assert_eq!(gray_cell.environment, FaultEnvironment::GrayPrimary);
        assert!(
            gray_cell.label.ends_with("/env=gray-primary"),
            "environment cells are labelled: {}",
            gray_cell.label
        );
        let gray = gray_cell.validation.expect("gray cell validated");
        assert_eq!(gray.environment, FaultEnvironment::GrayPrimary);
        assert!(gray.simulation.total_gray_events > 0);
        let finding = gray.divergence.expect("a gray primary must diverge");
        assert_eq!(finding.direction, DivergenceDirection::EmpiricalBelow);
        assert!(
            finding.magnitude > 0.5,
            "the liveness collapse is large: {}",
            finding.magnitude
        );
        assert!(gray.z_score < -DIVERGENCE_Z);
        // Analytic columns repeat across the environment axis (env-blind).
        assert_eq!(
            clean_cell.outcome.report.safe_and_live.probability(),
            gray_cell.outcome.report.safe_and_live.probability()
        );
        // First-class surfacing: the helper, the table column, the JSON object.
        let divergent = report.divergent_cells();
        assert_eq!(divergent.len(), 1);
        assert!(std::ptr::eq(divergent[0], gray_cell));
        let table = report.to_table("environment sweep");
        assert_eq!(table.rows()[0][10], "ok");
        assert!(
            table.rows()[1][10].contains("below"),
            "{}",
            table.rows()[1][10]
        );
        let parsed = JsonValue::parse(&report.to_json()).expect("valid JSON");
        let cells = parsed.get("cells").unwrap().as_array().unwrap();
        assert_eq!(
            cells[1].get("environment").and_then(JsonValue::as_str),
            Some("gray-primary")
        );
        assert!(cells[0]
            .get("validation")
            .unwrap()
            .get("divergence")
            .unwrap()
            .is_null());
        let d = cells[1]
            .get("validation")
            .unwrap()
            .get("divergence")
            .unwrap();
        assert_eq!(
            d.get("direction").and_then(JsonValue::as_str),
            Some("below")
        );
        assert_eq!(
            d.get("magnitude").and_then(JsonValue::as_f64),
            Some(finding.magnitude)
        );
    }

    #[test]
    fn environment_cells_are_bit_identical_across_thread_counts() {
        use crate::engine::{FaultEnvironment, SimBudget};
        // The determinism contract survives the adversarial environments: the
        // per-trial schedules derive from the salted chunk seed, never from
        // worker identity, so a gray-primary or partition-heal sweep serializes
        // byte-identically at any thread count.
        let query = Query::new()
            .protocols([ProtocolSpec::Raft])
            .nodes([5usize])
            .fault_probs([0.05])
            .fault_environments([
                FaultEnvironment::GrayPrimary,
                FaultEnvironment::PartitionHeal,
            ])
            .budget(Budget::default().with_seed(29).with_sim(SimBudget {
                trials: 16,
                horizon_millis: 1_500,
                fault_window_millis: 100,
                commands: 2,
                environment: FaultEnvironment::Clean,
            }))
            .validate_with_simulation();
        let reference = AnalysisSession::with_threads(1)
            .run(&query)
            .expect("well-formed query")
            .zero_wall_clock()
            .to_json();
        for threads in [2usize, 8] {
            let report = AnalysisSession::with_threads(threads)
                .run(&query)
                .expect("well-formed query")
                .zero_wall_clock()
                .to_json();
            assert_eq!(
                report, reference,
                "environment sweep diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn zero_sim_horizon_budgets_are_rejected_at_plan_time() {
        use crate::engine::SimBudget;
        let session = AnalysisSession::new();
        let bad = Budget::default().with_seed(1);
        let bad = Budget {
            sim: SimBudget {
                horizon_millis: 0,
                ..SimBudget::default()
            },
            ..bad
        };
        let query = Query::new()
            .protocols([ProtocolSpec::Raft])
            .nodes([3usize])
            .fault_probs([0.01])
            .budget(bad);
        let err = session.plan(&query).expect_err("zero horizon rejected");
        assert!(err.to_string().contains("horizon"));
    }

    #[test]
    fn posterior_sweeps_are_bit_identical_across_thread_counts() {
        // Draw items retire on arbitrary workers; the merge serializes them in
        // draw order, so a second-order sweep (chunked Monte Carlo base + whole
        // draw re-runs) must serialize byte-identically at any thread count.
        let query = Query::new()
            .protocols([ProtocolSpec::Raft])
            .nodes([5usize])
            .fault_probs([0.05])
            .correlations([CorrelationSpec::ClusterShock { probability: 0.02 }])
            .budget(Budget::default().with_seed(41).with_samples(20_000))
            .posterior(16, 3.5, 60.0);
        let reference = AnalysisSession::with_threads(1)
            .run(&query)
            .expect("well-formed query");
        assert!(
            reference.cell(0).epistemic.is_some(),
            "the sweep must actually be second-order"
        );
        let reference = reference.zero_wall_clock().to_json();
        for threads in [2usize, 8] {
            let report = AnalysisSession::with_threads(threads)
                .run(&query)
                .expect("well-formed query")
                .zero_wall_clock()
                .to_json();
            assert_eq!(
                report, reference,
                "posterior sweep diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn single_draw_posterior_degenerates_to_the_point_estimate_report() {
        // K = 1 carries no spread to summarize: the planner must emit the exact
        // first-order report, bit for bit — including the absence of the
        // `epistemic` JSON member.
        let base = Query::new()
            .protocols([ProtocolSpec::Raft])
            .nodes([5usize])
            .fault_probs([0.05])
            .correlations([CorrelationSpec::ClusterShock { probability: 0.02 }])
            .budget(Budget::default().with_seed(7).with_samples(10_000));
        let first_order = AnalysisSession::new()
            .run(&base)
            .expect("well-formed query")
            .zero_wall_clock()
            .to_json();
        let single_draw = AnalysisSession::new()
            .run(&base.clone().posterior(1, 3.5, 60.0))
            .expect("well-formed query")
            .zero_wall_clock()
            .to_json();
        assert_eq!(single_draw, first_order);
        assert!(!single_draw.contains("\"epistemic\""));
    }

    #[test]
    fn posterior_draws_never_alias_first_order_scratch() {
        // Regression: draw scratch holds kernels compiled for *scaled*
        // scenarios. If a draw's cache key collided with the base cell's, a
        // later first-order run would reuse a scaled kernel and silently shift
        // its estimates. Run second-order first, then first-order on the same
        // coordinate, and demand the fresh-session first-order result.
        let build = |draws: usize| {
            let query = Query::new()
                .protocols([ProtocolSpec::Raft])
                .nodes([5usize])
                .fault_probs([0.05])
                .correlations([CorrelationSpec::ClusterShock { probability: 0.02 }])
                .budget(Budget::default().with_seed(9).with_samples(5_000));
            if draws > 0 {
                query.posterior(draws, 3.5, 60.0)
            } else {
                query
            }
        };
        let expected = AnalysisSession::new().run(&build(0)).expect("valid query");
        let session = AnalysisSession::new();
        session.run(&build(8)).expect("valid query");
        let stats = session.cache_stats();
        assert_eq!(stats.entries, 9, "one base entry plus one entry per draw");
        let first_order = session.run(&build(0)).expect("valid query");
        assert_eq!(
            first_order.cell(0).outcome,
            expected.cell(0).outcome,
            "first-order cell must not see second-order scratch"
        );
        assert_eq!(
            session.cache_stats().entries,
            9,
            "the first-order run must hit the base entry, not re-insert"
        );
    }

    #[test]
    fn posterior_cells_report_both_interval_flavors() {
        // An exact counting cell: the aleatoric interval collapses to the point
        // value while the epistemic interval stays wide — the two axes measure
        // different uncertainty and must never be conflated.
        let session = AnalysisSession::new();
        let query = Query::new()
            .protocols([ProtocolSpec::Raft])
            .nodes([5usize])
            .fault_probs([0.05])
            .budget(Budget::default().with_seed(3))
            .posterior(64, 3.5, 60.0);
        let report = session.run(&query).expect("valid query");
        let cell = report.cell(0);
        assert_eq!(cell.engine, EngineChoice::Counting);
        let e = cell.epistemic.as_ref().expect("second-order cell");
        assert_eq!(e.draws.len(), 64);
        assert!(
            e.epistemic_width() > 0.0,
            "posterior spread must produce a non-degenerate epistemic interval"
        );
        assert_eq!(
            e.aleatoric_width(),
            0.0,
            "exact engines carry no sampling error"
        );
        assert!(e.epistemic_lower <= e.mean && e.mean <= e.epistemic_upper);
        // The engines must actually respond to the drawn parameter: a larger
        // drawn fault probability can only lower the guarantee.
        let mut by_p: Vec<_> = e.draws.iter().map(|d| (d.p, d.value)).collect();
        by_p.sort_by(|a, b| a.0.total_cmp(&b.0));
        for pair in by_p.windows(2) {
            assert!(
                pair[1].1 <= pair[0].1 + 1e-12,
                "reliability must fall as the drawn fault probability rises"
            );
        }
        assert!(report.to_json().contains("\"epistemic\""));
        let table = report.to_table("posterior").to_string();
        assert!(table.contains("epistemic CI"));
        assert!(table.contains("aleatoric CI"));
    }

    #[test]
    fn invalid_posterior_budgets_are_rejected_at_plan_time() {
        use crate::engine::EpistemicBudget;
        // The builders are assert-free so wire requests reach `validate()`
        // instead of panicking a server worker; every malformed shape must be
        // rejected at plan time with a diagnosable message.
        let session = AnalysisSession::new();
        let cases = [
            (Budget::default().with_posterior(0, 3.5, 60.0), "draws"),
            (
                Budget::default().with_posterior(8, -1.0, 60.0),
                "hyperparameters",
            ),
            (
                Budget::default().with_posterior(8, 3.5, f64::NAN),
                "hyperparameters",
            ),
            (
                Budget::default()
                    .with_epistemic(EpistemicBudget::new(8, 3.5, 60.0).with_level(1.0)),
                "level",
            ),
        ];
        for (budget, needle) in cases {
            let query = Query::new()
                .protocols([ProtocolSpec::Raft])
                .nodes([3usize])
                .fault_probs([0.01])
                .budget(budget);
            let err = session.plan(&query).expect_err("invalid epistemic budget");
            assert!(
                err.to_string().contains(needle),
                "{err} should mention {needle}"
            );
        }
    }

    #[test]
    fn heterogeneous_explicit_cell_matches_front_door() {
        let profiles: Vec<FaultProfile> = (0..7)
            .map(|i| FaultProfile::crash_only(0.01 * (i + 1) as f64))
            .collect();
        let deployment = Deployment::from_profiles(profiles);
        let model: Arc<dyn ProtocolModel + Send + Sync> = Arc::new(RaftModel::standard(7));
        let session = AnalysisSession::new();
        let report = session
            .run(&Query::new().cell("hetero", model.clone(), deployment.clone()))
            .expect("valid query");
        let expected = analyze_auto(model.as_ref(), &deployment, &Budget::default());
        assert_eq!(report.cell(0).outcome, expected);
    }
}
