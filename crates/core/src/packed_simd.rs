//! AVX-512 fast path of the packed kernel (width-8 passes only).
//!
//! The 8 blocks of a width-8 pass are exactly one 512-bit vector, so the lockstep
//! lexicographic compare of [`super`] maps 1:1 onto AVX-512: one `vpmullq`-based
//! SplitMix64 finalizer produces all 8 blocks' words for a bit position, and the two
//! mask updates are single `vpternlogq` instructions. Because every random word is a
//! pure function of `(block seed, position key)` — no generator state — this path
//! computes *the same words* as the portable compare and its tallies are
//! bit-identical; `super::tests::simd_and_portable_samplers_agree_bit_for_bit`
//! asserts that on AVX-512 hosts.
//!
//! Two throughput details beyond a mechanical translation:
//!
//! * **Node pairing.** The compare's loop-carried dependency is short (`eq` is one
//!   ternlog deep), so a single node's loop is bound by the exit-test latency, not
//!   arithmetic. Consecutive single-threshold nodes are interleaved two at a time —
//!   independent chains that pipeline — and the undecided test runs every *two* bit
//!   positions. Extra positions processed past a node's decision point are no-ops on
//!   its masks (see the module docs of [`super`]), so neither change affects output.
//! * **Vector tallies.** For the thresholds plan, the Harley–Seal vertical counter
//!   ripples all 8 blocks per instruction and the `count ≤ T` compare runs once per
//!   pass instead of once per block. The LUT plan keeps the portable per-block
//!   extraction (its per-lane table walk does not vectorize).
//!
//! Everything here is gated at runtime by [`available`]; hosts without AVX-512 (or
//! non-x86 targets, via `cfg`) use the portable sampler and produce identical
//! reports.

use core::arch::x86_64::*;

use super::{bound_state, split_wide, CountPredicate, HitPlan, PackedKernel, MAX_PLANES};
use crate::montecarlo::{chunk_seed, HitCounts};

/// Pass width of this module: eight 64-lane blocks, one `__m512i`.
const W: usize = 8;

/// Whether the running CPU supports the fast path (`avx512f` for the vector core,
/// `avx512dq` for the 64-bit multiplies of the SplitMix64 finalizer). The result is
/// cached by `std`'s feature detection, so callers may query per chunk.
pub(super) fn available() -> bool {
    std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512dq")
}

/// Width-8 chunk sampler on the AVX-512 path — bit-identical to
/// `PackedKernel::sample_chunk_w::<8>` by the positional-draw argument above.
///
/// # Panics
///
/// If the host lacks AVX-512 (callers gate on [`available`]).
pub(super) fn sample_chunk8(kernel: &PackedKernel, base: u64, count: usize) -> HitCounts {
    assert!(available(), "sample_chunk8 requires avx512f+avx512dq");
    // SAFETY: the required target features were verified present just above.
    unsafe { sample_chunk8_impl(kernel, base, count) }
}

/// Loads a block-mask row. (`loadu` has no alignment requirement; the reference
/// guarantees a valid 64-byte read.)
#[inline]
#[target_feature(enable = "avx512f")]
fn load8(x: &[u64; W]) -> __m512i {
    // SAFETY: `x` is a valid, readable, 64-byte location.
    unsafe { _mm512_loadu_si512(x.as_ptr().cast()) }
}

/// Stores a block-mask row (unaligned; the reference guarantees a valid write).
#[inline]
#[target_feature(enable = "avx512f")]
fn store8(x: &mut [u64; W], v: __m512i) {
    // SAFETY: `x` is a valid, writable, 64-byte location.
    unsafe { _mm512_storeu_si512(x.as_mut_ptr().cast(), v) }
}

/// The SplitMix64 finalizer ([`crate::montecarlo::mix64`]) over 8 lanes.
#[inline]
#[target_feature(enable = "avx512f,avx512dq")]
fn mix8(x: __m512i) -> __m512i {
    let c1 = _mm512_set1_epi64(0xBF58_476D_1CE4_E5B9u64 as i64);
    let c2 = _mm512_set1_epi64(0x94D0_49BB_1331_11EBu64 as i64);
    let mut x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 30));
    x = _mm512_mullo_epi64(x, c1);
    x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 27));
    x = _mm512_mullo_epi64(x, c2);
    _mm512_xor_si512(x, _mm512_srli_epi64(x, 31))
}

/// The threshold-bit selector of position `j` as a lane-replicated mask
/// (all-ones when bit `63 − j` of `t` is set).
#[inline]
#[target_feature(enable = "avx512f")]
fn selector(t: u64, j: usize) -> __m512i {
    _mm512_set1_epi64(0i64.wrapping_sub((t >> (63 - j) & 1) as i64))
}

/// One bit position of one node's compare: draw the 8 blocks' words and update the
/// `(lt, eq)` lane state. The two updates are the vector form of the portable
/// branchless step: `lt |= eq & sel & !r` and `eq &= !(r ^ sel)`.
#[inline]
#[target_feature(enable = "avx512f,avx512dq")]
fn step(seeds: __m512i, pos: u64, sel: __m512i, lt: &mut __m512i, eq: &mut __m512i) {
    let r = mix8(_mm512_xor_si512(seeds, _mm512_set1_epi64(pos as i64)));
    let armed = _mm512_and_si512(*eq, sel);
    *lt = _mm512_ternarylogic_epi64(*lt, armed, r, 0xF4); // lt | (armed & !r)
    *eq = _mm512_ternarylogic_epi64(*eq, r, sel, 0x90); // eq & !(r ^ sel)
}

/// Single-threshold compare of one draw row over the 8 blocks: `out[b]` gets block
/// `b`'s `u < t` lane mask. The undecided test runs every two positions (64 is
/// even, so the probe never reads past the row).
#[target_feature(enable = "avx512f,avx512dq")]
fn split_one8(seeds: __m512i, pos_row: &[u64; 64], t: u64, out: &mut [u64; W]) {
    let mut eq = _mm512_set1_epi64(-1);
    let mut lt = _mm512_setzero_si512();
    let mut j = 0usize;
    while j < 64 {
        step(seeds, pos_row[j], selector(t, j), &mut lt, &mut eq);
        step(seeds, pos_row[j + 1], selector(t, j + 1), &mut lt, &mut eq);
        if _mm512_test_epi64_mask(eq, eq) == 0 {
            break;
        }
        j += 2;
    }
    store8(out, lt);
}

/// Two nodes' single-threshold compares interleaved (independent dependency
/// chains), with a combined undecided test every two positions.
#[target_feature(enable = "avx512f,avx512dq")]
#[allow(clippy::too_many_arguments)] // the two interleaved compares' row/threshold/output triples
fn split_two8(
    seeds: __m512i,
    row0: &[u64; 64],
    row1: &[u64; 64],
    t0: u64,
    t1: u64,
    out0: &mut [u64; W],
    out1: &mut [u64; W],
) {
    let mut eq0 = _mm512_set1_epi64(-1);
    let mut lt0 = _mm512_setzero_si512();
    let mut eq1 = _mm512_set1_epi64(-1);
    let mut lt1 = _mm512_setzero_si512();
    let mut j = 0usize;
    while j < 64 {
        step(seeds, row0[j], selector(t0, j), &mut lt0, &mut eq0);
        step(seeds, row1[j], selector(t1, j), &mut lt1, &mut eq1);
        step(seeds, row0[j + 1], selector(t0, j + 1), &mut lt0, &mut eq0);
        step(seeds, row1[j + 1], selector(t1, j + 1), &mut lt1, &mut eq1);
        let undecided = _mm512_or_si512(eq0, eq1);
        if _mm512_test_epi64_mask(undecided, undecided) == 0 {
            break;
        }
        j += 2;
    }
    store8(out0, lt0);
    store8(out1, lt1);
}

/// The lane mask of counts `≥ k` over vector vertical-counter planes — the 8-block
/// form of `VerticalCounter::ge_mask`, with the same depth saturation rules.
#[inline]
#[target_feature(enable = "avx512f")]
fn ge_mask8(planes: &[__m512i; MAX_PLANES], depth: usize, k: usize) -> __m512i {
    if k == 0 {
        return _mm512_set1_epi64(-1);
    }
    if k >> depth != 0 {
        return _mm512_setzero_si512();
    }
    let mut gt = _mm512_setzero_si512();
    let mut eq = _mm512_set1_epi64(-1);
    for i in (0..depth).rev() {
        let p = planes[i];
        if k >> i & 1 == 1 {
            eq = _mm512_and_si512(eq, p);
        } else {
            gt = _mm512_ternarylogic_epi64(gt, eq, p, 0xF8); // gt | (eq & p)
            eq = _mm512_andnot_si512(p, eq);
        }
    }
    _mm512_or_si512(gt, eq)
}

/// One count predicate's 8-block lane mask (`CountPredicate::mask`, vector form).
#[inline]
#[target_feature(enable = "avx512f")]
fn predicate_mask8(p: CountPredicate, planes: &[__m512i; MAX_PLANES], depth: usize) -> __m512i {
    match p {
        CountPredicate::Never => _mm512_setzero_si512(),
        CountPredicate::Always => _mm512_set1_epi64(-1),
        CountPredicate::AtMost(bound) => {
            let ge = ge_mask8(planes, depth, bound + 1);
            _mm512_xor_si512(ge, _mm512_set1_epi64(-1))
        }
    }
}

/// The fast-path chunk sampler: structurally the portable `sample_chunk_w::<8>`,
/// with the compare and (for the thresholds plan) the tallies vectorized.
#[target_feature(enable = "avx512f,avx512dq")]
fn sample_chunk8_impl(kernel: &PackedKernel, base: u64, count: usize) -> HitCounts {
    let n = kernel.n;
    let mut crash = vec![[0u64; W]; n];
    let mut byz = vec![[0u64; W]; n];
    let mut faults = super::VerticalCounter::new(n);
    let mut byz_count = super::VerticalCounter::new(n);
    let depth = faults.depth;
    let mut hits = HitCounts::default();
    let mut remaining = count;
    let mut next_block = 0u64;
    while remaining > 0 {
        let lanes = remaining.min(64 * W);
        let blocks = lanes.div_ceil(64);
        let mut seeds = [0u64; W];
        for (b, s) in seeds.iter_mut().enumerate() {
            *s = chunk_seed(base, next_block + b as u64);
        }
        let seeds_v = load8(&seeds);

        // Node masks. Single-threshold nodes (Byzantine bound settled — every
        // crash-only node) queue up and run two at a time; dual-threshold nodes
        // take the portable compare (only mixed-mode deployments have them, and
        // their LUT evaluation dominates anyway).
        let mut pending: Option<(usize, u64)> = None;
        for (i, &(bz, ft)) in kernel.thresholds.iter().enumerate() {
            let (lt_b0, eq_b0, _) = bound_state(bz);
            let (lt_f0, eq_f0, tf) = bound_state(ft);
            if eq_b0 | eq_f0 == 0 {
                byz[i] = [lt_b0; W];
                crash[i] = [lt_f0; W];
            } else if eq_b0 == 0 {
                byz[i] = [lt_b0; W];
                if let Some((i0, t0)) = pending.take() {
                    let (head, tail) = crash.split_at_mut(i);
                    split_two8(
                        seeds_v,
                        &kernel.pos[i0],
                        &kernel.pos[i],
                        t0,
                        tf,
                        &mut head[i0],
                        &mut tail[0],
                    );
                } else {
                    pending = Some((i, tf));
                }
            } else {
                split_wide::<W>(&seeds, &kernel.pos[i], bz, ft, &mut byz[i], &mut crash[i]);
            }
        }
        if let Some((i0, t0)) = pending.take() {
            split_one8(seeds_v, &kernel.pos[i0], t0, &mut crash[i0]);
        }
        for (c, bz) in crash.iter_mut().zip(byz.iter()) {
            for b in 0..W {
                c[b] &= !bz[b];
            }
        }

        for (g, group) in kernel.groups.iter().enumerate() {
            let (lt0, eq0, t) = bound_state(group.shock);
            let mut fired = [lt0; W];
            if eq0 != 0 {
                split_one8(seeds_v, &kernel.pos[n + g], t, &mut fired);
            }
            kernel.apply_shock::<W>(group, &fired, blocks, &mut crash, &mut byz);
        }

        match &kernel.plan {
            HitPlan::Thresholds { safe, live, both } => {
                // Vector vertical counter: one ripple updates all 8 blocks.
                let mut planes = [_mm512_setzero_si512(); MAX_PLANES];
                for (c, bz) in crash.iter().zip(byz.iter()) {
                    let mut m = _mm512_or_si512(load8(c), load8(bz));
                    for plane in planes.iter_mut().take(depth) {
                        let carry = _mm512_and_si512(*plane, m);
                        *plane = _mm512_xor_si512(*plane, m);
                        m = carry;
                    }
                }
                let safe_v = predicate_mask8(*safe, &planes, depth);
                let live_v = if live == safe {
                    safe_v
                } else {
                    predicate_mask8(*live, &planes, depth)
                };
                let both_v = if both == safe {
                    safe_v
                } else if both == live {
                    live_v
                } else {
                    predicate_mask8(*both, &planes, depth)
                };
                let (mut safe_m, mut live_m, mut both_m) = ([0u64; W], [0u64; W], [0u64; W]);
                store8(&mut safe_m, safe_v);
                store8(&mut live_m, live_v);
                store8(&mut both_m, both_v);
                let mut lanes_left = lanes;
                for b in 0..blocks {
                    let block_lanes = lanes_left.min(64);
                    let valid: u64 = if block_lanes == 64 {
                        !0
                    } else {
                        (1u64 << block_lanes) - 1
                    };
                    hits.safe += (safe_m[b] & valid).count_ones() as usize;
                    hits.live += (live_m[b] & valid).count_ones() as usize;
                    hits.both += (both_m[b] & valid).count_ones() as usize;
                    lanes_left -= block_lanes;
                }
            }
            HitPlan::Lut { .. } => {
                let mut lanes_left = lanes;
                for b in 0..blocks {
                    let block_lanes = lanes_left.min(64);
                    let valid: u64 = if block_lanes == 64 {
                        !0
                    } else {
                        (1u64 << block_lanes) - 1
                    };
                    let (safe_mask, live_mask, both_mask) = kernel.eval_block::<W>(
                        &crash,
                        &byz,
                        b,
                        block_lanes,
                        &mut faults,
                        &mut byz_count,
                    );
                    hits.safe += (safe_mask & valid).count_ones() as usize;
                    hits.live += (live_mask & valid).count_ones() as usize;
                    hits.both += (both_mask & valid).count_ones() as usize;
                    lanes_left -= block_lanes;
                }
            }
        }
        next_block += blocks as u64;
        remaining -= lanes;
    }
    hits
}
