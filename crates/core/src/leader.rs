//! Reliability-aware leader selection and preemptive reconfiguration (§4).
//!
//! "Probabilistic approaches can choose leaders among the most reliable nodes, avoiding
//! more failure-prone nodes... Similarly, predictive models for node reliability enable
//! preemptive reconfiguration, mitigating potential failures from jeopardizing safety or
//! liveness."

use fault_model::node::{Fleet, NodeId};

use crate::deployment::Deployment;

/// How the protocol picks its leader among the cluster members.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaderPolicy {
    /// Leaders rotate (or are elected) without regard to reliability; in expectation the
    /// leader's fault probability is the fleet average.
    Oblivious,
    /// The most reliable node leads (the probability-native policy).
    MostReliable,
    /// The *least* reliable node leads — the worst case an oblivious protocol can hit.
    WorstCase,
}

/// Ranks the nodes of a deployment from most to least suitable to lead (lowest fault
/// probability first).
pub fn rank_leaders(deployment: &Deployment) -> Vec<usize> {
    deployment.nodes_by_reliability()
}

/// Probability that the leader chosen under `policy` fails during the mission window.
pub fn leader_failure_probability(deployment: &Deployment, policy: LeaderPolicy) -> f64 {
    let faults: Vec<f64> = deployment
        .profiles()
        .iter()
        .map(|p| p.fault_probability())
        .collect();
    match policy {
        LeaderPolicy::Oblivious => faults.iter().sum::<f64>() / faults.len() as f64,
        LeaderPolicy::MostReliable => faults.iter().cloned().fold(f64::INFINITY, f64::min),
        LeaderPolicy::WorstCase => faults.iter().cloned().fold(0.0, f64::max),
    }
}

/// Expected number of leader-failure-induced view changes over `views` consecutive
/// mission windows under a leader policy (each window with an independently chosen
/// leader according to the policy).
pub fn expected_leader_view_changes(
    deployment: &Deployment,
    policy: LeaderPolicy,
    views: usize,
) -> f64 {
    leader_failure_probability(deployment, policy) * views as f64
}

/// A recommendation to replace a node before its predicted fault probability crosses a
/// threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplacementPlan {
    /// The node to replace.
    pub node: NodeId,
    /// Hours from now until the node's predicted window fault probability first exceeds
    /// the threshold (0 if it already does).
    pub replace_in_hours: f64,
    /// The predicted fault probability at that time.
    pub predicted_probability: f64,
}

/// Plans preemptive reconfiguration for a fleet: for each node whose fault-curve-predicted
/// probability of failing within `window_hours` exceeds `threshold` at some point within
/// `horizon_hours`, reports when that happens. Nodes that stay below the threshold over
/// the whole horizon are omitted.
pub fn preemptive_replacement_plan(
    fleet: &Fleet,
    window_hours: f64,
    horizon_hours: f64,
    threshold: f64,
    step_hours: f64,
) -> Vec<ReplacementPlan> {
    assert!(window_hours > 0.0 && horizon_hours >= 0.0 && step_hours > 0.0);
    assert!((0.0..=1.0).contains(&threshold));
    let mut plans = Vec::new();
    for node in fleet.iter() {
        let mut t = 0.0;
        while t <= horizon_hours {
            let p_crash = node
                .crash_curve
                .failure_probability(node.age_hours + t, window_hours);
            let p_byz = node
                .byzantine_curve
                .failure_probability(node.age_hours + t, window_hours);
            let p = 1.0 - (1.0 - p_crash) * (1.0 - p_byz);
            if p >= threshold {
                plans.push(ReplacementPlan {
                    node: node.id,
                    replace_in_hours: t,
                    predicted_probability: p,
                });
                break;
            }
            t += step_hours;
        }
    }
    plans.sort_by(|a, b| a.replace_in_hours.partial_cmp(&b.replace_in_hours).unwrap());
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use fault_model::curve::WeibullCurve;
    use fault_model::metrics::HOURS_PER_YEAR;
    use fault_model::mode::FaultProfile;
    use fault_model::node::NodeSpec;
    use std::sync::Arc;

    fn mixed() -> Deployment {
        Deployment::from_profiles(vec![
            FaultProfile::crash_only(0.08),
            FaultProfile::crash_only(0.01),
            FaultProfile::crash_only(0.04),
        ])
    }

    #[test]
    fn ranking_prefers_reliable_nodes() {
        assert_eq!(rank_leaders(&mixed()), vec![1, 2, 0]);
    }

    #[test]
    fn leader_policies_order_failure_probabilities() {
        let d = mixed();
        let best = leader_failure_probability(&d, LeaderPolicy::MostReliable);
        let avg = leader_failure_probability(&d, LeaderPolicy::Oblivious);
        let worst = leader_failure_probability(&d, LeaderPolicy::WorstCase);
        assert!((best - 0.01).abs() < 1e-12);
        assert!((worst - 0.08).abs() < 1e-12);
        assert!(best < avg && avg < worst);
    }

    #[test]
    fn expected_view_changes_scale_with_views() {
        let d = mixed();
        let one = expected_leader_view_changes(&d, LeaderPolicy::MostReliable, 1);
        let hundred = expected_leader_view_changes(&d, LeaderPolicy::MostReliable, 100);
        assert!((hundred - 100.0 * one).abs() < 1e-12);
    }

    #[test]
    fn preemptive_plan_flags_aging_nodes_first() {
        let mut fleet = Fleet::new();
        // A young node on a wear-out curve and an already-old node on the same curve.
        fleet.push(
            NodeSpec::with_constant_crash(0, 0.0, HOURS_PER_YEAR)
                .with_crash_curve(Arc::new(WeibullCurve::new(3.0, 60_000.0)))
                .with_age(1_000.0)
                .named("young"),
        );
        fleet.push(
            NodeSpec::with_constant_crash(1, 0.0, HOURS_PER_YEAR)
                .with_crash_curve(Arc::new(WeibullCurve::new(3.0, 60_000.0)))
                .with_age(45_000.0)
                .named("old"),
        );
        let plans =
            preemptive_replacement_plan(&fleet, HOURS_PER_YEAR, 4.0 * HOURS_PER_YEAR, 0.30, 500.0);
        assert!(!plans.is_empty());
        assert_eq!(plans[0].node, NodeId(1), "the old node is flagged first");
        if plans.len() == 2 {
            assert!(plans[0].replace_in_hours <= plans[1].replace_in_hours);
        }
        assert!(plans[0].predicted_probability >= 0.30);
    }

    #[test]
    fn stable_nodes_are_not_flagged() {
        let fleet = Fleet::homogeneous_crash(3, 0.01);
        let plans =
            preemptive_replacement_plan(&fleet, HOURS_PER_YEAR, HOURS_PER_YEAR, 0.5, 1000.0);
        assert!(plans.is_empty());
    }
}
