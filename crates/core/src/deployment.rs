//! Deployments: the per-node failure probabilities the analysis runs against.

use fault_model::metrics::HOURS_PER_YEAR;
use fault_model::mode::FaultProfile;
use fault_model::node::Fleet;

/// A deployment is the set of machines a consensus group runs on, reduced to each
/// machine's fault profile over the mission window of interest.
///
/// §3 of the paper assumes "every machine u has a constant probability p_u of failing";
/// [`Deployment::uniform_crash`] and [`Deployment::uniform_byzantine`] construct exactly
/// that setting, while [`Deployment::from_fleet`] evaluates full fault curves over a
/// window.
#[derive(Debug, Clone, PartialEq)]
pub struct Deployment {
    profiles: Vec<FaultProfile>,
}

impl Deployment {
    /// Creates a deployment from explicit per-node profiles.
    pub fn from_profiles(profiles: Vec<FaultProfile>) -> Self {
        assert!(!profiles.is_empty(), "deployment needs at least one node");
        Self { profiles }
    }

    /// `n` nodes, each crashing independently with probability `p` (no Byzantine faults) —
    /// the CFT analysis setting used for Table 2.
    pub fn uniform_crash(n: usize, p: f64) -> Self {
        Self::from_profiles(vec![FaultProfile::crash_only(p); n])
    }

    /// `n` nodes, each turning Byzantine independently with probability `p` — the BFT
    /// analysis setting used for Table 1.
    pub fn uniform_byzantine(n: usize, p: f64) -> Self {
        Self::from_profiles(vec![FaultProfile::byzantine_only(p); n])
    }

    /// `n` nodes with both a crash probability and a Byzantine probability (the
    /// "mercurial cores" setting of §2(4)).
    pub fn uniform_mixed(n: usize, crash: f64, byzantine: f64) -> Self {
        Self::from_profiles(vec![FaultProfile::new(crash, byzantine); n])
    }

    /// Evaluates a fleet's fault curves over `window_hours` to build the deployment.
    pub fn from_fleet(fleet: &Fleet, window_hours: f64) -> Self {
        Self::from_profiles(fleet.profiles(window_hours))
    }

    /// Evaluates a fleet's fault curves over a one-year window.
    pub fn from_fleet_annual(fleet: &Fleet) -> Self {
        Self::from_fleet(fleet, HOURS_PER_YEAR)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the deployment has no nodes (never true; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The per-node fault profiles.
    pub fn profiles(&self) -> &[FaultProfile] {
        &self.profiles
    }

    /// The profile of one node.
    pub fn profile(&self, node: usize) -> FaultProfile {
        self.profiles[node]
    }

    /// Replaces the profile of one node, returning a new deployment. Used for
    /// node-replacement what-ifs ("swap three 8% nodes for 1% nodes").
    pub fn with_profile(&self, node: usize, profile: FaultProfile) -> Self {
        assert!(node < self.profiles.len(), "node index out of range");
        let mut profiles = self.profiles.clone();
        profiles[node] = profile;
        Self { profiles }
    }

    /// Whether any node has a non-zero Byzantine probability.
    pub fn has_byzantine(&self) -> bool {
        self.profiles
            .iter()
            .any(|p| p.byzantine_probability() > 0.0)
    }

    /// Whether any node has a non-zero crash probability.
    pub fn has_crash(&self) -> bool {
        self.profiles.iter().any(|p| p.crash_probability() > 0.0)
    }

    /// Indices of nodes ordered from most to least reliable (lowest fault probability
    /// first); ties broken by index.
    pub fn nodes_by_reliability(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.profiles.len()).collect();
        idx.sort_by(|&a, &b| {
            self.profiles[a]
                .fault_probability()
                .partial_cmp(&self.profiles[b].fault_probability())
                .unwrap()
                .then(a.cmp(&b))
        });
        idx
    }

    /// The mean per-node fault probability.
    pub fn mean_fault_probability(&self) -> f64 {
        self.profiles
            .iter()
            .map(|p| p.fault_probability())
            .sum::<f64>()
            / self.profiles.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fault_model::node::NodeSpec;

    #[test]
    fn uniform_crash_deployment() {
        let d = Deployment::uniform_crash(5, 0.02);
        assert_eq!(d.len(), 5);
        assert!(d.has_crash() && !d.has_byzantine());
        assert!((d.mean_fault_probability() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn uniform_byzantine_deployment() {
        let d = Deployment::uniform_byzantine(4, 0.01);
        assert!(d.has_byzantine() && !d.has_crash());
        assert_eq!(d.profile(3).byzantine_probability(), 0.01);
    }

    #[test]
    fn mixed_deployment_has_both_modes() {
        let d = Deployment::uniform_mixed(3, 0.04, 0.0001);
        assert!(d.has_crash() && d.has_byzantine());
    }

    #[test]
    fn with_profile_replaces_one_node() {
        let d = Deployment::uniform_crash(7, 0.08);
        let improved = d.with_profile(2, FaultProfile::crash_only(0.01));
        assert_eq!(improved.profile(2).crash_probability(), 0.01);
        assert_eq!(improved.profile(3).crash_probability(), 0.08);
        assert_eq!(d.profile(2).crash_probability(), 0.08, "original unchanged");
    }

    #[test]
    fn reliability_ordering() {
        let d = Deployment::from_profiles(vec![
            FaultProfile::crash_only(0.08),
            FaultProfile::crash_only(0.01),
            FaultProfile::crash_only(0.04),
        ]);
        assert_eq!(d.nodes_by_reliability(), vec![1, 2, 0]);
    }

    #[test]
    fn from_fleet_uses_curve_probabilities() {
        let mut fleet = Fleet::new();
        fleet.push(NodeSpec::with_constant_crash(0, 0.08, HOURS_PER_YEAR));
        fleet.push(NodeSpec::with_constant_crash(1, 0.01, HOURS_PER_YEAR));
        let d = Deployment::from_fleet_annual(&fleet);
        assert!((d.profile(0).crash_probability() - 0.08).abs() < 1e-9);
        assert!((d.profile(1).crash_probability() - 0.01).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn rejects_empty_deployment() {
        Deployment::from_profiles(vec![]);
    }
}
