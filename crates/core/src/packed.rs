//! Bit-sliced Monte Carlo kernel: up to 512 scenarios per pass.
//!
//! The scalar sampler evaluates one failure configuration at a time: draw a state per
//! node, then ask the protocol model about the resulting configuration. For
//! [`CountingModel`]s the second half collapses to two fault counts, which makes the
//! whole evaluation *bit-sliceable*: this kernel packs 64 independent scenarios into
//! the lanes of `u64` words, so one word of per-node state answers "is node `i`
//! crashed?" for 64 scenarios simultaneously.
//!
//! # Lane masks from position-addressed randomness
//!
//! Node `i`'s two thresholds (`P[Byzantine]`, `P[any fault]`) are converted once to
//! fixed point on the 64-bit uniform lattice (`t = p · 2⁶⁴`). A scenario's uniform
//! draw `u` is compared against both thresholds *bitwise*: random words supply bit
//! `k` of all 64 lanes' `u` at once, and a lexicographic comparison from the most
//! significant bit maintains, per threshold, a "still equal" lane mask and a
//! "decided less" lane mask. Each random word halves the undecided lanes in
//! expectation, so ~8 words decide all 64 lanes — an ~8× reduction in RNG traffic
//! over scalar sampling on top of the vectorized compare.
//!
//! The random words are *position-addressed* (a counter-based generator, like
//! Salmon et al.'s Philox/Threefry family): the word feeding bit `k` of draw row
//! `row` in 64-lane block `b` is
//!
//! ```text
//! word(b, row, k) = mix64(block_seed(b) ^ pos[row][63 − k])
//! ```
//!
//! where `mix64` is the SplitMix64 finalizer and `pos` is a per-kernel table of
//! precomputed position keys (one row per node, then one per correlation group).
//! There is no generator state to advance, so a word's value depends only on *where*
//! it is used, never on how many words anything else consumed — the property all the
//! determinism and SIMD guarantees below fall out of. Correlation-group shocks are
//! one more single-threshold row each: their fired-lane mask is OR-ed over the
//! member masks (Byzantine shocks override crash lanes; Byzantine outcomes are never
//! downgraded, mirroring [`CorrelationModel::sample_into`]).
//!
//! # Multi-word passes
//!
//! A pass processes up to [`MAX_LANE_WORDS`] 64-lane *blocks* at once (512 scenarios
//! at the default width, [`Budget::mc_lane_words`](crate::engine::Budget)). The
//! lexicographic compare runs over all blocks of a pass in lockstep — the
//! threshold-bit selectors are hoisted out of the per-word loop and the per-block
//! update is branchless (`sel = 0 − bit` turns the two threshold cases into mask
//! arithmetic) — so the serial `eq`-mask dependency chains of independent blocks
//! pipeline across each other instead of stalling one at a time, and a node's
//! threshold state is loaded once per pass instead of once per word. Lane masks are
//! laid out node-major (`mask[node][block]`), keeping one pass's working set —
//! `2 · n · W` words plus the vertical counters — inside L1 for every deployment
//! this repository analyzes. Sample counts not divisible by `64 · W` take a ragged
//! tail: a final short pass (fewer blocks) whose last block masks surplus lanes out
//! of the tallies.
//!
//! On x86-64 hosts with AVX-512 (runtime-detected), width-8 passes take a SIMD fast
//! path: the 8 blocks of a pass are exactly one 512-bit vector, the compare loop
//! interleaves two nodes to hide the multiply latency of `mix64`, and the vertical
//! counters are rippled vector-wide. Because every random word is a pure function of
//! its position, the SIMD path computes *the same words* as the portable path and
//! its reports are bit-identical — `packed::tests` asserts this on AVX-512 hosts.
//!
//! # Counting and thresholds
//!
//! Per-scenario fault counts are accumulated with bit-sliced vertical adders
//! (Harley–Seal style): `planes[k]` holds bit `k` of every lane's running count, and
//! adding a node's fault mask is a ripple-carry over the planes. For crash-only
//! deployments whose predicates are monotone in the fault count (every `standard`
//! Raft/PBFT configuration), the three guarantees reduce to `count ≤ T` checks,
//! evaluated for all 64 lanes at once by a bitwise lexicographic comparison over the
//! planes and tallied with a popcount (predicates that coincide — Raft's liveness
//! and joint guarantee, say — are compared once and shared). Everything else (mixed
//! crash/Byzantine deployments, non-monotone counting predicates) falls back to a
//! per-lane count extraction and a precomputed `(crashed, byzantine) → {safe, live,
//! both}` lookup table — still far cheaper than the scalar path, which re-scans the
//! whole state vector per scenario.
//!
//! # Determinism
//!
//! The kernel runs under the same chunked `(seed, chunk index)` scheme as the scalar
//! engine ([`crate::montecarlo::MC_CHUNK_SIZE`]), so a fixed seed is bit-identical at
//! any thread count. Within a chunk, the chunk's `StdRng` contributes exactly one
//! base word, and the 64-lane block with in-chunk index `b` draws its words from
//! `block_seed(b) = chunk_seed(base, b)` at the positions described above. A block's
//! masks therefore depend only on `(base, b)` — never on the pass width grouping the
//! blocks, the order anything was computed in, or how many words another block
//! needed — which makes the report bit-identical for **any** lane width `W`, any
//! thread count, and either the portable or the SIMD compare. (Early exit is sound
//! for the same reason: once a block's `eq` mask is zero its outputs are fixed, so
//! processing further bit positions for the *pass* is a no-op for that block.) The
//! packed RNG *stream* differs from the scalar stream by construction (positional
//! lattice draws instead of per-scenario `f64` draws), so packed and scalar runs
//! agree statistically — within confidence intervals — not bit-for-bit;
//! `tests/engine_agreement.rs` pins all three properties.

use fault_model::correlation::CorrelationModel;
use fault_model::mode::NodeState;
use rand::RngCore;

use crate::montecarlo::{
    chunk_seed, map_sample_chunks, mix64, report_from_counts, HitCounts, McKernel, MonteCarloReport,
};
use crate::protocol::CountingModel;

#[cfg(target_arch = "x86_64")]
#[path = "packed_simd.rs"]
mod simd;

/// Maximum bit planes a vertical counter carries: counts up to 2¹⁶ − 1 nodes, far
/// beyond any deployment this repository analyzes.
const MAX_PLANES: usize = 16;

/// Maximum number of 64-lane `u64` blocks a pass processes at once (512 scenarios).
/// The pass scratch is stack-sized by this constant; the effective width is the
/// [`Budget::mc_lane_words`](crate::engine::Budget) knob, clamped to `1..=8`.
pub const MAX_LANE_WORDS: usize = 8;

/// Default pass width: results are bit-identical at every width (see the module
/// docs), so the default is simply the fastest one — eight blocks, which is also the
/// width the AVX-512 fast path engages at (one pass is one 512-bit vector).
pub const DEFAULT_LANE_WORDS: usize = 8;

/// A probability as an inclusive-exclusive bound on the 64-bit uniform lattice:
/// `u < t` fires with probability `t / 2⁶⁴`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bound {
    /// Probability 0: never fires.
    Never,
    /// Fires when the 64-bit uniform draw is below `t`.
    Fixed(u64),
    /// Probability 1: always fires.
    Always,
}

/// Converts a probability to its fixed-point threshold. Rounding error is at most
/// 2⁻⁶⁴ per draw — far below the f64 resolution of the scalar path's thresholds.
fn fixed_point(p: f64) -> Bound {
    if p <= 0.0 {
        Bound::Never
    } else if p >= 1.0 {
        Bound::Always
    } else {
        // p ∈ (0, 1), so p · 2⁶⁴ ∈ (0, 2⁶⁴); the saturating float→int cast turns a
        // rounded-up 2⁶⁴ into u64::MAX (probability 1 − 2⁻⁶⁴).
        match (p * 18_446_744_073_709_551_616.0) as u64 {
            0 => Bound::Never,
            t => Bound::Fixed(t),
        }
    }
}

/// Initial `(lt, eq, threshold)` lane state of one lexicographic comparison.
fn bound_state(bound: Bound) -> (u64, u64, u64) {
    match bound {
        Bound::Never => (0, 0, 0),
        Bound::Always => (!0, 0, 0),
        Bound::Fixed(t) => (0, !0, t),
    }
}

/// The position key feeding bit position `j` (counting from the most significant
/// comparison step) of draw row `row` — row-major SplitMix64 points, precomputed
/// into [`PackedKernel::pos`] so the hot loop pays one load instead of a mix.
/// The `+ 1` keeps position `(0, 0)` off the finalizer's 0 → 0 fixed point.
fn pos_key(row: usize, j: usize) -> u64 {
    mix64(((row * 64 + j) as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// One draw row's dual-threshold lexicographic compare over the `W` blocks of a
/// pass in lockstep, writing block `b`'s masks to `byz_out[b]` / `fault_out[b]`
/// (the *fault* mask — the caller subtracts the Byzantine lanes).
///
/// The word feeding bit position `j` of block `b` is `mix64(seeds[b] ^ pos_row[j])`
/// — position-addressed, so blocks have no consumption state to keep consistent and
/// the loop is branchless over `b` (decided blocks keep computing words, which is a
/// no-op on their outputs — see the module docs). Degenerate bounds short-circuit to
/// constant masks without touching `pos_row` at all.
#[inline]
fn split_wide<const W: usize>(
    seeds: &[u64; W],
    pos_row: &[u64; 64],
    byz: Bound,
    fault: Bound,
    byz_out: &mut [u64; W],
    fault_out: &mut [u64; W],
) {
    let (lt_b0, eq_b0, tb) = bound_state(byz);
    let (lt_f0, eq_f0, tf) = bound_state(fault);
    *byz_out = [lt_b0; W];
    *fault_out = [lt_f0; W];
    if eq_b0 | eq_f0 == 0 {
        return; // both bounds degenerate: constant masks
    }
    if eq_b0 == 0 {
        // Single-threshold fast path (crash-only nodes and group shocks): the
        // Byzantine compare is settled, skip its mask arithmetic entirely.
        split_single::<W>(seeds, pos_row, tf, fault_out);
        debug_assert!(byz_out
            .iter()
            .zip(fault_out.iter())
            .all(|(&b, &f)| b & !f == 0));
        return;
    }
    let mut eq_b = [eq_b0; W];
    let mut eq_f = [eq_f0; W];
    for (j, &pos) in pos_row.iter().enumerate() {
        let k = 63 - j;
        let sel_b = 0u64.wrapping_sub(tb >> k & 1);
        let sel_f = 0u64.wrapping_sub(tf >> k & 1);
        let mut undecided = 0u64;
        for b in 0..W {
            let r = mix64(seeds[b] ^ pos);
            byz_out[b] |= eq_b[b] & !r & sel_b;
            eq_b[b] &= r ^ !sel_b;
            fault_out[b] |= eq_f[b] & !r & sel_f;
            eq_f[b] &= r ^ !sel_f;
            undecided |= eq_b[b] | eq_f[b];
        }
        if undecided == 0 {
            break;
        }
    }
    for b in 0..W {
        debug_assert_eq!(
            byz_out[b] & !fault_out[b],
            0,
            "byzantine lanes must be faulty lanes"
        );
    }
}

/// Single-threshold form of the lockstep compare: `out[b]` gets block `b`'s
/// `u < t` lane mask. Lanes still undecided after 64 bits have `u = t` exactly,
/// which is not `<`.
#[inline]
fn split_single<const W: usize>(seeds: &[u64; W], pos_row: &[u64; 64], t: u64, out: &mut [u64; W]) {
    let mut eq = [!0u64; W];
    let mut lt = [0u64; W];
    for (j, &pos) in pos_row.iter().enumerate() {
        let sel = 0u64.wrapping_sub(t >> (63 - j) & 1);
        let mut undecided = 0u64;
        for b in 0..W {
            let r = mix64(seeds[b] ^ pos);
            lt[b] |= eq[b] & !r & sel;
            eq[b] &= r ^ !sel;
            undecided |= eq[b];
        }
        if undecided == 0 {
            break;
        }
    }
    *out = lt;
}

/// A bit-sliced vertical counter: `planes[k]` holds bit `k` of each lane's count.
#[derive(Debug, Clone)]
struct VerticalCounter {
    planes: [u64; MAX_PLANES],
    depth: usize,
}

impl VerticalCounter {
    /// A counter able to hold counts up to `max_count` in every lane.
    fn new(max_count: usize) -> Self {
        let depth = (usize::BITS - max_count.leading_zeros()) as usize;
        assert!(
            depth <= MAX_PLANES,
            "vertical counter supports up to {} nodes, got {max_count}",
            (1usize << MAX_PLANES) - 1
        );
        Self {
            planes: [0; MAX_PLANES],
            depth: depth.max(1),
        }
    }

    fn reset(&mut self) {
        self.planes[..self.depth].fill(0);
    }

    /// Adds 1 to every lane set in `mask` (ripple-carry across the planes).
    #[inline]
    fn add(&mut self, mut mask: u64) {
        for plane in &mut self.planes[..self.depth] {
            if mask == 0 {
                return;
            }
            let carry = *plane & mask;
            *plane ^= mask;
            mask = carry;
        }
        debug_assert_eq!(mask, 0, "vertical counter overflow");
    }

    /// The lane mask of counts `≥ k`, by bitwise lexicographic comparison of every
    /// lane's count against the constant — O(planes) word ops for all 64 lanes.
    fn ge_mask(&self, k: usize) -> u64 {
        if k == 0 {
            return !0;
        }
        if k >> self.depth != 0 {
            return 0; // k needs more bits than any lane's count can have
        }
        let mut gt = 0u64;
        let mut eq = !0u64;
        for i in (0..self.depth).rev() {
            let p = self.planes[i];
            if k >> i & 1 == 1 {
                eq &= p;
            } else {
                gt |= eq & p;
                eq &= !p;
            }
        }
        gt | eq
    }
}

/// One guarantee's predicate over the per-lane fault count, when it is a monotone
/// prefix ("true up to a bound").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CountPredicate {
    /// False for every count.
    Never,
    /// True for every count.
    Always,
    /// True exactly for counts `≤` the bound.
    AtMost(usize),
}

impl CountPredicate {
    /// The lane mask where the predicate holds.
    fn mask(self, faults: &VerticalCounter) -> u64 {
        match self {
            CountPredicate::Never => 0,
            CountPredicate::Always => !0,
            CountPredicate::AtMost(bound) => !faults.ge_mask(bound + 1),
        }
    }
}

/// Classifies `table[c] = predicate(c)` as a monotone prefix, or `None` if the
/// predicate is not monotone in the fault count.
fn prefix_predicate(table: &[bool]) -> Option<CountPredicate> {
    let leading_true = table.iter().take_while(|&&x| x).count();
    if table[leading_true..].iter().any(|&x| x) {
        return None;
    }
    Some(match leading_true {
        0 => CountPredicate::Never,
        t if t == table.len() => CountPredicate::Always,
        t => CountPredicate::AtMost(t - 1),
    })
}

/// Bit flags of the lookup-table plan.
const FLAG_SAFE: u8 = 1;
const FLAG_LIVE: u8 = 2;
const FLAG_BOTH: u8 = 4;

/// How a block's per-lane hits are evaluated.
#[derive(Debug, Clone)]
enum HitPlan {
    /// Crash-only deployment with monotone counting predicates: bit-sliced
    /// `count ≤ T` comparisons and popcounts, no per-lane work at all.
    Thresholds {
        safe: CountPredicate,
        live: CountPredicate,
        both: CountPredicate,
    },
    /// General case: extract each lane's `(crashed, byzantine)` pair and consult a
    /// precomputed predicate table (`flags[c · (n + 1) + b]`).
    Lut { flags: Vec<u8> },
}

/// One correlation group, compiled for the packed kernel.
#[derive(Debug, Clone)]
struct PackedGroup {
    shock: Bound,
    mode: NodeState,
    members: Vec<usize>,
}

/// A counting model + failure model pair compiled into bit-sliced form. Built once
/// per run (outside the parallel loop) and shared read-only by every chunk.
#[derive(Debug, Clone)]
pub(crate) struct PackedKernel {
    n: usize,
    /// Per-node `(byzantine, fault)` thresholds.
    thresholds: Vec<(Bound, Bound)>,
    groups: Vec<PackedGroup>,
    /// Position-key rows of the counter-based generator: one row per node, then one
    /// per correlation group (seed-independent — see [`pos_key`]).
    pos: Vec<[u64; 64]>,
    /// No Byzantine mass anywhere: the Byzantine lane masks are identically zero and
    /// their counter is skipped.
    crash_only: bool,
    plan: HitPlan,
}

impl PackedKernel {
    pub(crate) fn new<M: CountingModel + ?Sized>(
        model: &M,
        failure_model: &CorrelationModel,
    ) -> Self {
        let n = failure_model.len();
        assert_eq!(
            model.num_nodes(),
            n,
            "model and failure model disagree on the cluster size"
        );
        let thresholds: Vec<(Bound, Bound)> = failure_model
            .profiles()
            .iter()
            .map(|p| {
                (
                    fixed_point(p.byzantine_probability()),
                    fixed_point(p.fault_probability()),
                )
            })
            .collect();
        let groups: Vec<PackedGroup> = failure_model
            .groups()
            .iter()
            .map(|g| PackedGroup {
                shock: fixed_point(g.shock_probability),
                mode: g.shock_mode,
                members: g.members.clone(),
            })
            .collect();
        let pos = (0..n + groups.len())
            .map(|row| std::array::from_fn(|j| pos_key(row, j)))
            .collect();
        let crash_only = thresholds.iter().all(|&(b, _)| b == Bound::Never)
            && groups.iter().all(|g| g.mode != NodeState::Byzantine);
        let plan = if crash_only {
            let probe = |f: &dyn Fn(usize) -> bool| (0..=n).map(f).collect::<Vec<bool>>();
            let safe = prefix_predicate(&probe(&|c| model.is_safe_counts(c, 0)));
            let live = prefix_predicate(&probe(&|c| model.is_live_counts(c, 0)));
            let both = prefix_predicate(&probe(&|c| model.is_safe_and_live_counts(c, 0)));
            match (safe, live, both) {
                (Some(safe), Some(live), Some(both)) => HitPlan::Thresholds { safe, live, both },
                _ => Self::lut_plan(model, n),
            }
        } else {
            Self::lut_plan(model, n)
        };
        Self {
            n,
            thresholds,
            groups,
            pos,
            crash_only,
            plan,
        }
    }

    /// Precomputes `(crashed, byzantine) → {safe, live, both}` for every reachable
    /// count pair.
    fn lut_plan<M: CountingModel + ?Sized>(model: &M, n: usize) -> HitPlan {
        let stride = n + 1;
        let mut flags = vec![0u8; stride * stride];
        for c in 0..=n {
            for b in 0..=(n - c) {
                let mut f = 0u8;
                if model.is_safe_counts(c, b) {
                    f |= FLAG_SAFE;
                }
                if model.is_live_counts(c, b) {
                    f |= FLAG_LIVE;
                }
                if model.is_safe_and_live_counts(c, b) {
                    f |= FLAG_BOTH;
                }
                flags[c * stride + b] = f;
            }
        }
        HitPlan::Lut { flags }
    }

    /// Draws and tallies `count` scenarios, up to `64 · lane_words` per pass: each
    /// pass runs `lane_words` 64-lane blocks in lockstep (the final pass ragged —
    /// fewer blocks, and surplus lanes of the last block masked out of the tallies).
    ///
    /// `rng` is the chunk RNG of the `(seed, chunk)` determinism scheme; it
    /// contributes exactly one word, from which every block's position-addressed
    /// words are derived by in-chunk block index — see the module docs for why this
    /// makes the result independent of `lane_words`, the thread count, and the
    /// portable-vs-SIMD choice.
    pub(crate) fn sample_chunk<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        count: usize,
        lane_words: usize,
    ) -> HitCounts {
        let base = rng.next_u64();
        match lane_words.clamp(1, MAX_LANE_WORDS) {
            1 => self.sample_chunk_w::<1>(base, count),
            2 => self.sample_chunk_w::<2>(base, count),
            3 => self.sample_chunk_w::<3>(base, count),
            4 => self.sample_chunk_w::<4>(base, count),
            5 => self.sample_chunk_w::<5>(base, count),
            6 => self.sample_chunk_w::<6>(base, count),
            7 => self.sample_chunk_w::<7>(base, count),
            _ => {
                #[cfg(target_arch = "x86_64")]
                if simd::available() {
                    return simd::sample_chunk8(self, base, count);
                }
                self.sample_chunk_w::<8>(base, count)
            }
        }
    }

    /// The portable sampler at compile-time width `W` — the reference the SIMD path
    /// must agree with bit-for-bit.
    fn sample_chunk_w<const W: usize>(&self, base: u64, count: usize) -> HitCounts {
        let n = self.n;
        // Node-major lane masks: node i's mask for pass block b is `crash[i][b]`,
        // so one node's blocks are contiguous for the lockstep compare.
        let mut crash = vec![[0u64; W]; n];
        let mut byz = vec![[0u64; W]; n];
        let mut faults = VerticalCounter::new(n);
        let mut byz_count = VerticalCounter::new(n);
        let mut hits = HitCounts::default();
        let mut remaining = count;
        let mut next_block = 0u64;
        while remaining > 0 {
            let lanes = remaining.min(64 * W);
            let blocks = lanes.div_ceil(64);
            // Ragged final pass: seeds past `blocks` address blocks that do not
            // exist; their masks are computed and discarded (never tallied).
            let mut seeds = [0u64; W];
            for (b, s) in seeds.iter_mut().enumerate() {
                *s = chunk_seed(base, next_block + b as u64);
            }
            for (i, &(bz, ft)) in self.thresholds.iter().enumerate() {
                split_wide::<W>(&seeds, &self.pos[i], bz, ft, &mut byz[i], &mut crash[i]);
                for b in 0..W {
                    crash[i][b] &= !byz[i][b];
                }
            }
            for (g, group) in self.groups.iter().enumerate() {
                let mut fired = [0u64; W];
                let mut zero = [0u64; W];
                split_wide::<W>(
                    &seeds,
                    &self.pos[n + g],
                    Bound::Never,
                    group.shock,
                    &mut zero,
                    &mut fired,
                );
                self.apply_shock(group, &fired, blocks, &mut crash, &mut byz);
            }
            let mut lanes_left = lanes;
            for b in 0..blocks {
                let block_lanes = lanes_left.min(64);
                let valid: u64 = if block_lanes == 64 {
                    !0
                } else {
                    (1u64 << block_lanes) - 1
                };
                let (safe_mask, live_mask, both_mask) =
                    self.eval_block::<W>(&crash, &byz, b, block_lanes, &mut faults, &mut byz_count);
                hits.safe += (safe_mask & valid).count_ones() as usize;
                hits.live += (live_mask & valid).count_ones() as usize;
                hits.both += (both_mask & valid).count_ones() as usize;
                lanes_left -= block_lanes;
            }
            next_block += blocks as u64;
            remaining -= lanes;
        }
        hits
    }

    /// Applies one correlation group's fired-lane masks to the node masks of a pass,
    /// mirroring the scalar override rules of [`CorrelationModel::sample_into`].
    #[inline]
    fn apply_shock<const W: usize>(
        &self,
        group: &PackedGroup,
        fired: &[u64; W],
        blocks: usize,
        crash: &mut [[u64; W]],
        byz: &mut [[u64; W]],
    ) {
        for (b, &f) in fired.iter().enumerate().take(blocks) {
            if f == 0 {
                continue;
            }
            match group.mode {
                NodeState::Byzantine => {
                    for &m in &group.members {
                        byz[m][b] |= f;
                        crash[m][b] &= !f;
                    }
                }
                NodeState::Crashed => {
                    for &m in &group.members {
                        crash[m][b] |= f & !byz[m][b];
                    }
                }
                // Nothing constructs "repair" shocks today, but mirror the
                // scalar override rule (Byzantine is never downgraded) exactly.
                NodeState::Correct => {
                    for &m in &group.members {
                        crash[m][b] &= !f;
                    }
                }
            }
        }
    }

    /// Tallies one 64-lane block of a pass into `{safe, live, both}` lane masks,
    /// reading the node-major masks at block column `block`.
    #[inline]
    fn eval_block<const W: usize>(
        &self,
        crash: &[[u64; W]],
        byz: &[[u64; W]],
        block: usize,
        lanes: usize,
        faults: &mut VerticalCounter,
        byz_count: &mut VerticalCounter,
    ) -> (u64, u64, u64) {
        let n = self.n;
        match &self.plan {
            HitPlan::Thresholds { safe, live, both } => {
                faults.reset();
                for i in 0..n {
                    faults.add(crash[i][block] | byz[i][block]);
                }
                // Coinciding predicates share one comparison (Raft's liveness and
                // joint guarantee, for instance, are the same `count ≤ f` check).
                let safe_mask = safe.mask(faults);
                let live_mask = if live == safe {
                    safe_mask
                } else {
                    live.mask(faults)
                };
                let both_mask = if both == safe {
                    safe_mask
                } else if both == live {
                    live_mask
                } else {
                    both.mask(faults)
                };
                (safe_mask, live_mask, both_mask)
            }
            HitPlan::Lut { flags } => {
                faults.reset();
                for row in crash.iter().take(n) {
                    faults.add(row[block]);
                }
                if !self.crash_only {
                    byz_count.reset();
                    for row in byz.iter().take(n) {
                        byz_count.add(row[block]);
                    }
                }
                let stride = n + 1;
                let mut cp = faults.planes;
                let mut bp = byz_count.planes;
                let (cd, bd) = (faults.depth, byz_count.depth);
                let mut safe_mask = 0u64;
                let mut live_mask = 0u64;
                let mut both_mask = 0u64;
                for lane in 0..lanes {
                    let mut c = 0usize;
                    for (k, plane) in cp.iter_mut().enumerate().take(cd) {
                        c |= ((*plane & 1) as usize) << k;
                        *plane >>= 1;
                    }
                    let mut b = 0usize;
                    if !self.crash_only {
                        for (k, plane) in bp.iter_mut().enumerate().take(bd) {
                            b |= ((*plane & 1) as usize) << k;
                            *plane >>= 1;
                        }
                    }
                    let f = flags[c * stride + b];
                    safe_mask |= ((f & FLAG_SAFE) as u64) << lane;
                    live_mask |= (((f & FLAG_LIVE) >> 1) as u64) << lane;
                    both_mask |= (((f & FLAG_BOTH) >> 2) as u64) << lane;
                }
                (safe_mask, live_mask, both_mask)
            }
        }
    }
}

/// Estimates the reliability of a counting model with the bit-sliced batch kernel,
/// up to `64 ·` [`DEFAULT_LANE_WORDS`] scenarios per pass, across the persistent
/// thread pool.
///
/// Deterministic for a fixed `seed` regardless of thread count, pass width, or the
/// portable-vs-SIMD compare (the chunked `(seed, chunk)` scheme of
/// [`crate::montecarlo`] plus position-addressed per-block draws — see the module
/// docs); agrees with the scalar engine statistically, not bit-for-bit (different
/// RNG stream). A zero sample budget saturates to one sample. Use
/// [`monte_carlo_reliability_packed_par_lanes`] to pin a pass width.
pub fn monte_carlo_reliability_packed_par<M: CountingModel + ?Sized>(
    model: &M,
    failure_model: &CorrelationModel,
    samples: usize,
    seed: u64,
) -> MonteCarloReport {
    monte_carlo_reliability_packed_par_lanes(
        model,
        failure_model,
        samples,
        seed,
        DEFAULT_LANE_WORDS,
    )
}

/// [`monte_carlo_reliability_packed_par`] with an explicit pass width of
/// `lane_words` `u64` blocks (clamped to `1..=`[`MAX_LANE_WORDS`]). The report is
/// bit-identical at every width; the knob exists for benchmarks (the `packed-width`
/// criterion group) and the cross-width agreement tests.
pub fn monte_carlo_reliability_packed_par_lanes<M: CountingModel + ?Sized>(
    model: &M,
    failure_model: &CorrelationModel,
    samples: usize,
    seed: u64,
    lane_words: usize,
) -> MonteCarloReport {
    let kernel = PackedKernel::new(model, failure_model);
    packed_par_with_kernel(&kernel, samples, seed, lane_words)
}

/// Runs the packed kernel across the pool from an already-compiled [`PackedKernel`] —
/// the tail of [`monte_carlo_reliability_packed_par`], shared with the query API
/// ([`crate::query`]), whose planned cells compile the thresholds/LUT once per
/// (model, failure-model) group and reuse them across every cell of a sweep.
pub(crate) fn packed_par_with_kernel(
    kernel: &PackedKernel,
    samples: usize,
    seed: u64,
    lane_words: usize,
) -> MonteCarloReport {
    let samples = samples.max(1);
    let hits = map_sample_chunks(samples, seed, |rng, count| {
        kernel.sample_chunk(rng, count, lane_words)
    })
    .into_iter()
    .fold(HitCounts::default(), std::ops::Add::add);
    report_from_counts(hits, samples, McKernel::Packed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::counting_reliability;
    use crate::deployment::Deployment;
    use crate::montecarlo::MC_CHUNK_SIZE;
    use crate::pbft_model::PbftModel;
    use crate::raft_model::RaftModel;
    use fault_model::correlation::CorrelationGroup;
    use fault_model::mode::FaultProfile;

    fn crash_model(n: usize, p: f64) -> CorrelationModel {
        CorrelationModel::independent(vec![FaultProfile::crash_only(p); n])
    }

    #[test]
    fn fixed_point_handles_the_edges() {
        assert_eq!(fixed_point(0.0), Bound::Never);
        assert_eq!(fixed_point(-0.1), Bound::Never);
        assert_eq!(fixed_point(1.0), Bound::Always);
        assert_eq!(fixed_point(0.5), Bound::Fixed(1u64 << 63));
        // The largest f64 below 1: the threshold must stay below 2^64 (no wrap) and
        // land within a few thousand lattice points of the top.
        let just_below_one = f64::from_bits(1.0f64.to_bits() - 1);
        match fixed_point(just_below_one) {
            Bound::Fixed(t) => assert!(t > u64::MAX - 4096, "threshold {t} too far from 2^64"),
            other => panic!("expected a Fixed bound, got {other:?}"),
        }
    }

    #[test]
    fn split_masks_match_their_probabilities() {
        let pos: [u64; 64] = std::array::from_fn(|j| pos_key(0, j));
        let (p_byz, p_fault) = (0.1, 0.4);
        let (byz, fault) = (fixed_point(p_byz), fixed_point(p_fault));
        let (mut byz_bits, mut fault_bits) = (0u64, 0u64);
        const BLOCKS: u64 = 4_000;
        for block in 0..BLOCKS {
            let seeds = [chunk_seed(1, block)];
            let (mut b, mut f) = ([0u64; 1], [0u64; 1]);
            split_wide::<1>(&seeds, &pos, byz, fault, &mut b, &mut f);
            assert_eq!(b[0] & !f[0], 0, "byzantine lanes must be faulty lanes");
            byz_bits += u64::from(b[0].count_ones());
            fault_bits += u64::from(f[0].count_ones());
        }
        let total = (64 * BLOCKS) as f64;
        assert!((byz_bits as f64 / total - p_byz).abs() < 0.01);
        assert!((fault_bits as f64 / total - p_fault).abs() < 0.01);
        // Degenerate bounds give constant masks.
        let seeds = [chunk_seed(1, 0)];
        let (mut b, mut f) = ([0u64; 1], [0u64; 1]);
        split_wide::<1>(&seeds, &pos, Bound::Never, Bound::Never, &mut b, &mut f);
        assert_eq!((b[0], f[0]), (0, 0));
        split_wide::<1>(&seeds, &pos, Bound::Never, Bound::Always, &mut b, &mut f);
        assert_eq!((b[0], f[0]), (0, !0));
        split_wide::<1>(&seeds, &pos, Bound::Always, Bound::Always, &mut b, &mut f);
        assert_eq!((b[0], f[0]), (!0, !0));
    }

    #[test]
    fn wide_and_narrow_splits_agree_block_for_block() {
        // The positional generator makes a block's masks a pure function of
        // (seed, position row): running blocks one at a time or eight in lockstep
        // must produce identical words.
        let pos: [u64; 64] = std::array::from_fn(|j| pos_key(3, j));
        let (byz, fault) = (fixed_point(0.02), fixed_point(0.3));
        let seeds: [u64; 8] = std::array::from_fn(|b| chunk_seed(99, b as u64));
        let (mut b8, mut f8) = ([0u64; 8], [0u64; 8]);
        split_wide::<8>(&seeds, &pos, byz, fault, &mut b8, &mut f8);
        for b in 0..8 {
            let (mut b1, mut f1) = ([0u64; 1], [0u64; 1]);
            split_wide::<1>(&[seeds[b]], &pos, byz, fault, &mut b1, &mut f1);
            assert_eq!((b1[0], f1[0]), (b8[b], f8[b]), "block {b}");
        }
    }

    #[test]
    fn vertical_counter_matches_a_scalar_recount() {
        let masks: Vec<u64> = (0..11).map(|i| mix64(i as u64 + 1000)).collect();
        let mut counter = VerticalCounter::new(masks.len());
        for &m in &masks {
            counter.add(m);
        }
        for lane in 0..64 {
            let expected = masks.iter().filter(|&&m| m >> lane & 1 == 1).count();
            let mut got = 0usize;
            for k in 0..counter.depth {
                got |= ((counter.planes[k] >> lane & 1) as usize) << k;
            }
            assert_eq!(got, expected, "lane {lane}");
        }
        for k in 0..=masks.len() + 1 {
            let expected: u64 = (0..64)
                .filter(|&lane| masks.iter().filter(|&&m| m >> lane & 1 == 1).count() >= k)
                .fold(0, |acc, lane| acc | 1 << lane);
            assert_eq!(counter.ge_mask(k), expected, "ge_mask({k})");
        }
    }

    #[test]
    fn prefix_predicates_classify_monotone_tables() {
        assert_eq!(
            prefix_predicate(&[true, true, false]),
            Some(CountPredicate::AtMost(1))
        );
        assert_eq!(prefix_predicate(&[true; 4]), Some(CountPredicate::Always));
        assert_eq!(prefix_predicate(&[false; 3]), Some(CountPredicate::Never));
        assert_eq!(prefix_predicate(&[true, false, true]), None);
    }

    #[test]
    fn crash_only_raft_uses_the_threshold_plan_and_matches_exact_counting() {
        let model = RaftModel::standard(5);
        let deployment = Deployment::uniform_crash(5, 0.05);
        let kernel = PackedKernel::new(&model, &crash_model(5, 0.05));
        assert!(kernel.crash_only);
        assert!(matches!(kernel.plan, HitPlan::Thresholds { .. }));
        let exact = counting_reliability(&model, &deployment);
        let report = monte_carlo_reliability_packed_par(&model, &crash_model(5, 0.05), 200_000, 11);
        assert!(
            report.live.contains(exact.p_live),
            "exact {} outside [{}, {}]",
            exact.p_live,
            report.live.lower,
            report.live.upper
        );
        assert!((report.safe.value - 1.0).abs() < 1e-12);
        assert_eq!(report.samples, 200_000);
    }

    #[test]
    fn mixed_mode_pbft_uses_the_lut_plan_and_matches_exact_counting() {
        let model = PbftModel::standard(7);
        let deployment = Deployment::uniform_mixed(7, 0.05, 0.02);
        let target = CorrelationModel::independent(deployment.profiles().to_vec());
        let kernel = PackedKernel::new(&model, &target);
        assert!(!kernel.crash_only);
        assert!(matches!(kernel.plan, HitPlan::Lut { .. }));
        let exact = counting_reliability(&model, &deployment);
        let report = monte_carlo_reliability_packed_par(&model, &target, 200_000, 3);
        for (estimate, truth, what) in [
            (report.safe, exact.p_safe, "safe"),
            (report.live, exact.p_live, "live"),
            (report.safe_and_live, exact.p_safe_and_live, "safe&live"),
        ] {
            assert!(
                estimate.contains(truth),
                "{what}: exact {truth} outside [{}, {}]",
                estimate.lower,
                estimate.upper
            );
        }
    }

    #[test]
    fn correlated_shock_probability_is_recovered() {
        // Independent part cannot fail; the only route to losing liveness is the
        // full-cluster crash shock, so P[live] must equal 1 − shock.
        let shock = 0.3;
        let target =
            crash_model(5, 0.0).with_group(CorrelationGroup::crash_shock((0..5).collect(), shock));
        let model = RaftModel::standard(5);
        let report = monte_carlo_reliability_packed_par(&model, &target, 100_000, 5);
        assert!(
            report.live.contains(1.0 - shock),
            "1 - shock = {} outside [{}, {}]",
            1.0 - shock,
            report.live.lower,
            report.live.upper
        );
    }

    #[test]
    fn byzantine_shock_overrides_crash_lanes() {
        // Every node crashes independently with certainty; a certain Byzantine shock
        // must override all of them, so PBFT safety collapses exactly as the scalar
        // sampler's override rule dictates (Byzantine dominates crash).
        let target = CorrelationModel::independent(vec![FaultProfile::crash_only(1.0); 4])
            .with_group(CorrelationGroup::byzantine_shock((0..4).collect(), 1.0));
        let model = PbftModel::standard(4);
        let report = monte_carlo_reliability_packed_par(&model, &target, 1_000, 2);
        // 4 Byzantine nodes out of 4: never safe, never live.
        assert_eq!(report.safe.value, 0.0);
        assert_eq!(report.live.value, 0.0);
    }

    #[test]
    fn certain_crash_probability_needs_no_randomness() {
        let model = RaftModel::standard(3);
        let target = crash_model(3, 1.0);
        let report = monte_carlo_reliability_packed_par(&model, &target, 10_000, 9);
        assert_eq!(report.live.value, 0.0, "all nodes always crash");
        assert_eq!(report.safe.value, 1.0, "crashes never violate safety");
    }

    #[test]
    fn ragged_tail_blocks_are_masked_not_dropped() {
        let model = RaftModel::standard(9);
        let target = crash_model(9, 0.08);
        // Neither a multiple of 64 nor of the chunk size.
        let samples = 2 * MC_CHUNK_SIZE + 77;
        let report = monte_carlo_reliability_packed_par(&model, &target, samples, 21);
        assert_eq!(report.samples, samples);
        let exact = counting_reliability(&model, &Deployment::uniform_crash(9, 0.08));
        assert!(report.live.contains(exact.p_live));
    }

    /// Workloads that, between them, exercise every kernel path: the thresholds
    /// plan, the LUT plan with Byzantine mass, and correlation shocks of both modes.
    fn identity_workloads() -> Vec<(Box<dyn CountingModel>, CorrelationModel)> {
        let mixed = CorrelationModel::independent(
            (0..7)
                .map(|i| FaultProfile::new(0.02 * (i % 3) as f64, 0.01))
                .collect(),
        )
        .with_group(CorrelationGroup::byzantine_shock(vec![0, 1, 2], 0.005))
        .with_group(CorrelationGroup::crash_shock(vec![3, 4, 5, 6], 0.01));
        vec![
            (Box::new(RaftModel::standard(9)), crash_model(9, 0.08)),
            (Box::new(PbftModel::standard(7)), mixed),
        ]
    }

    #[test]
    fn packed_kernel_is_bit_identical_across_lane_widths() {
        for (model, target) in identity_workloads() {
            // Sample counts hitting the ragged-tail edges of every width W: one
            // lane, one block less a lane, a full widest pass ± one lane, and a
            // multi-chunk count that is ragged at both the chunk and pass level.
            for samples in [
                1,
                63,
                64 * MAX_LANE_WORDS - 1,
                64 * MAX_LANE_WORDS + 1,
                MC_CHUNK_SIZE + 513,
                3 * MC_CHUNK_SIZE + 17,
            ] {
                let reference = monte_carlo_reliability_packed_par_lanes(
                    model.as_ref(),
                    &target,
                    samples,
                    42,
                    1,
                );
                for w in 2..=MAX_LANE_WORDS {
                    let report = monte_carlo_reliability_packed_par_lanes(
                        model.as_ref(),
                        &target,
                        samples,
                        42,
                        w,
                    );
                    assert_eq!(report, reference, "divergence at W={w}, samples={samples}");
                }
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn simd_and_portable_samplers_agree_bit_for_bit() {
        if !simd::available() {
            eprintln!("skipping: no AVX-512 on this host");
            return;
        }
        for (model, target) in identity_workloads() {
            let kernel = PackedKernel::new(model.as_ref(), &target);
            for count in [1, 63, 64, 511, 512, 513, 640, MC_CHUNK_SIZE] {
                for base in [0u64, 7, 0xDEAD_BEEF] {
                    assert_eq!(
                        simd::sample_chunk8(&kernel, base, count),
                        kernel.sample_chunk_w::<8>(base, count),
                        "divergence at count={count}, base={base}"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_kernel_is_bit_identical_across_thread_counts() {
        let model = PbftModel::standard(7);
        let target = CorrelationModel::independent(
            (0..7)
                .map(|i| FaultProfile::new(0.02 * (i % 3) as f64, 0.01))
                .collect(),
        )
        .with_group(CorrelationGroup::byzantine_shock(vec![0, 1, 2], 0.005))
        .with_group(CorrelationGroup::crash_shock(vec![3, 4, 5, 6], 0.01));
        let samples = 3 * MC_CHUNK_SIZE + 17;
        for lane_words in [1usize, 4, 8] {
            let reference =
                monte_carlo_reliability_packed_par_lanes(&model, &target, samples, 42, lane_words);
            for threads in [1usize, 2, 3, 8] {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("pool");
                let report = pool.install(|| {
                    monte_carlo_reliability_packed_par_lanes(
                        &model, &target, samples, 42, lane_words,
                    )
                });
                assert_eq!(
                    report, reference,
                    "divergence at {threads} threads, W={lane_words}"
                );
            }
        }
    }

    #[test]
    fn zero_sample_budget_saturates_to_one_sample() {
        let model = RaftModel::standard(3);
        let report = monte_carlo_reliability_packed_par(&model, &crash_model(3, 0.1), 0, 1);
        assert_eq!(report.samples, 1);
        for e in [report.safe, report.live, report.safe_and_live] {
            assert!(e.value.is_finite() && 0.0 <= e.lower && e.upper <= 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "disagree on the cluster size")]
    fn size_mismatch_panics() {
        let model = RaftModel::standard(3);
        monte_carlo_reliability_packed_par(&model, &crash_model(4, 0.1), 10, 1);
    }
}
