//! Bit-sliced Monte Carlo kernel: 64 scenarios per pass.
//!
//! The scalar sampler evaluates one failure configuration at a time: draw a state per
//! node, then ask the protocol model about the resulting configuration. For
//! [`CountingModel`]s the second half collapses to two fault counts, which makes the
//! whole evaluation *bit-sliceable*: this kernel packs 64 independent scenarios into
//! the lanes of `u64` words, so one word of per-node state answers "is node `i`
//! crashed?" for 64 scenarios simultaneously.
//!
//! # Lane masks from the RNG stream
//!
//! Node `i`'s two thresholds (`P[Byzantine]`, `P[any fault]`) are converted once to
//! fixed point on the 64-bit uniform lattice (`t = p · 2⁶⁴`). A scenario's uniform
//! draw `u` is compared against both thresholds *bitwise*: random words supply bit
//! `k` of all 64 lanes' `u` at once, and a lexicographic comparison from the most
//! significant bit maintains, per threshold, a "still equal" lane mask and a
//! "decided less" lane mask. Each random word halves the undecided lanes in
//! expectation, so ~7–8 words decide all 64 lanes — an ~8× reduction in RNG traffic
//! over scalar sampling on top of the vectorized compare. Correlation-group shocks
//! draw one fired-lane mask per group and are OR-ed over the member masks
//! (Byzantine shocks override crash lanes; Byzantine outcomes are never downgraded,
//! mirroring [`CorrelationModel::sample_into`]).
//!
//! # Counting and thresholds
//!
//! Per-scenario fault counts are accumulated with bit-sliced vertical adders
//! (Harley–Seal style): `planes[k]` holds bit `k` of every lane's running count, and
//! adding a node's fault mask is a ripple-carry over the planes. For crash-only
//! deployments whose predicates are monotone in the fault count (every `standard`
//! Raft/PBFT configuration), the three guarantees reduce to `count ≤ T` checks,
//! evaluated for all 64 lanes at once by a bitwise lexicographic comparison over the
//! planes and tallied with a popcount. Everything else (mixed crash/Byzantine
//! deployments, non-monotone counting predicates) falls back to a per-lane count
//! extraction and a precomputed `(crashed, byzantine) → {safe, live, both}` lookup
//! table — still far cheaper than the scalar path, which re-scans the whole state
//! vector per scenario.
//!
//! # Determinism
//!
//! The kernel runs under the same chunked `(seed, chunk index)` scheme as the scalar
//! engine ([`crate::montecarlo::MC_CHUNK_SIZE`]), so a fixed seed is bit-identical at
//! any thread count. The packed RNG *stream* differs from the scalar stream by
//! construction (bitwise lattice draws instead of per-scenario `f64` draws), so
//! packed and scalar runs agree statistically — within confidence intervals — not
//! bit-for-bit; `tests/engine_agreement.rs` pins both properties.

use fault_model::correlation::CorrelationModel;
use fault_model::mode::NodeState;
use rand::RngCore;

use crate::montecarlo::{
    map_sample_chunks, report_from_counts, HitCounts, McKernel, MonteCarloReport,
};
use crate::protocol::CountingModel;

/// Maximum bit planes a vertical counter carries: counts up to 2¹⁶ − 1 nodes, far
/// beyond any deployment this repository analyzes.
const MAX_PLANES: usize = 16;

/// A probability as an inclusive-exclusive bound on the 64-bit uniform lattice:
/// `u < t` fires with probability `t / 2⁶⁴`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bound {
    /// Probability 0: never fires, and consumes no randomness.
    Never,
    /// Fires when the 64-bit uniform draw is below `t`.
    Fixed(u64),
    /// Probability 1: always fires, and consumes no randomness.
    Always,
}

/// Converts a probability to its fixed-point threshold. Rounding error is at most
/// 2⁻⁶⁴ per draw — far below the f64 resolution of the scalar path's thresholds.
fn fixed_point(p: f64) -> Bound {
    if p <= 0.0 {
        Bound::Never
    } else if p >= 1.0 {
        Bound::Always
    } else {
        // p ∈ (0, 1), so p · 2⁶⁴ ∈ (0, 2⁶⁴); the saturating float→int cast turns a
        // rounded-up 2⁶⁴ into u64::MAX (probability 1 − 2⁻⁶⁴).
        match (p * 18_446_744_073_709_551_616.0) as u64 {
            0 => Bound::Never,
            t => Bound::Fixed(t),
        }
    }
}

/// Initial `(lt, eq, threshold)` lane state of one lexicographic comparison.
fn bound_state(bound: Bound) -> (u64, u64, u64) {
    match bound {
        Bound::Never => (0, 0, 0),
        Bound::Always => (!0, 0, 0),
        Bound::Fixed(t) => (0, !0, t),
    }
}

/// Draws 64 scenarios' node states at once: returns `(byzantine, faulty)` lane masks
/// for thresholds `byz ≤ fault`, by comparing one shared 64-bit uniform per lane
/// against both thresholds bit by bit (most significant first), early-exiting once
/// every lane is decided. Lanes still undecided after 64 bits have `u = t` exactly,
/// which is not `<`.
#[inline]
fn split_masks<R: RngCore + ?Sized>(rng: &mut R, byz: Bound, fault: Bound) -> (u64, u64) {
    let (mut lt_b, mut eq_b, tb) = bound_state(byz);
    let (mut lt_f, mut eq_f, tf) = bound_state(fault);
    for k in (0..64).rev() {
        if eq_b | eq_f == 0 {
            break;
        }
        let r = rng.next_u64();
        if tb >> k & 1 == 1 {
            lt_b |= eq_b & !r;
            eq_b &= r;
        } else {
            eq_b &= !r;
        }
        if tf >> k & 1 == 1 {
            lt_f |= eq_f & !r;
            eq_f &= r;
        } else {
            eq_f &= !r;
        }
    }
    debug_assert_eq!(lt_b & !lt_f, 0, "byzantine lanes must be faulty lanes");
    (lt_b, lt_f)
}

/// Single-threshold form of [`split_masks`], for correlation-group shocks. With a
/// `Never` byzantine bound the dual-threshold loop — word consumption and early
/// exit included — reduces exactly to the single comparison.
#[inline]
fn bernoulli_mask<R: RngCore + ?Sized>(rng: &mut R, bound: Bound) -> u64 {
    split_masks(rng, Bound::Never, bound).1
}

/// A bit-sliced vertical counter: `planes[k]` holds bit `k` of each lane's count.
#[derive(Debug, Clone)]
struct VerticalCounter {
    planes: [u64; MAX_PLANES],
    depth: usize,
}

impl VerticalCounter {
    /// A counter able to hold counts up to `max_count` in every lane.
    fn new(max_count: usize) -> Self {
        let depth = (usize::BITS - max_count.leading_zeros()) as usize;
        assert!(
            depth <= MAX_PLANES,
            "vertical counter supports up to {} nodes, got {max_count}",
            (1usize << MAX_PLANES) - 1
        );
        Self {
            planes: [0; MAX_PLANES],
            depth: depth.max(1),
        }
    }

    fn reset(&mut self) {
        self.planes[..self.depth].fill(0);
    }

    /// Adds 1 to every lane set in `mask` (ripple-carry across the planes).
    #[inline]
    fn add(&mut self, mut mask: u64) {
        for plane in &mut self.planes[..self.depth] {
            if mask == 0 {
                return;
            }
            let carry = *plane & mask;
            *plane ^= mask;
            mask = carry;
        }
        debug_assert_eq!(mask, 0, "vertical counter overflow");
    }

    /// The lane mask of counts `≥ k`, by bitwise lexicographic comparison of every
    /// lane's count against the constant — O(planes) word ops for all 64 lanes.
    fn ge_mask(&self, k: usize) -> u64 {
        if k == 0 {
            return !0;
        }
        if k >> self.depth != 0 {
            return 0; // k needs more bits than any lane's count can have
        }
        let mut gt = 0u64;
        let mut eq = !0u64;
        for i in (0..self.depth).rev() {
            let p = self.planes[i];
            if k >> i & 1 == 1 {
                eq &= p;
            } else {
                gt |= eq & p;
                eq &= !p;
            }
        }
        gt | eq
    }
}

/// One guarantee's predicate over the per-lane fault count, when it is a monotone
/// prefix ("true up to a bound").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CountPredicate {
    /// False for every count.
    Never,
    /// True for every count.
    Always,
    /// True exactly for counts `≤` the bound.
    AtMost(usize),
}

impl CountPredicate {
    /// The lane mask where the predicate holds.
    fn mask(self, faults: &VerticalCounter) -> u64 {
        match self {
            CountPredicate::Never => 0,
            CountPredicate::Always => !0,
            CountPredicate::AtMost(bound) => !faults.ge_mask(bound + 1),
        }
    }
}

/// Classifies `table[c] = predicate(c)` as a monotone prefix, or `None` if the
/// predicate is not monotone in the fault count.
fn prefix_predicate(table: &[bool]) -> Option<CountPredicate> {
    let leading_true = table.iter().take_while(|&&x| x).count();
    if table[leading_true..].iter().any(|&x| x) {
        return None;
    }
    Some(match leading_true {
        0 => CountPredicate::Never,
        t if t == table.len() => CountPredicate::Always,
        t => CountPredicate::AtMost(t - 1),
    })
}

/// Bit flags of the lookup-table plan.
const FLAG_SAFE: u8 = 1;
const FLAG_LIVE: u8 = 2;
const FLAG_BOTH: u8 = 4;

/// How a block's per-lane hits are evaluated.
#[derive(Debug, Clone)]
enum HitPlan {
    /// Crash-only deployment with monotone counting predicates: bit-sliced
    /// `count ≤ T` comparisons and popcounts, no per-lane work at all.
    Thresholds {
        safe: CountPredicate,
        live: CountPredicate,
        both: CountPredicate,
    },
    /// General case: extract each lane's `(crashed, byzantine)` pair and consult a
    /// precomputed predicate table (`flags[c · (n + 1) + b]`).
    Lut { flags: Vec<u8> },
}

/// One correlation group, compiled for the packed kernel.
#[derive(Debug, Clone)]
struct PackedGroup {
    shock: Bound,
    mode: NodeState,
    members: Vec<usize>,
}

/// A counting model + failure model pair compiled into bit-sliced form. Built once
/// per run (outside the parallel loop) and shared read-only by every chunk.
#[derive(Debug, Clone)]
pub(crate) struct PackedKernel {
    n: usize,
    /// Per-node `(byzantine, fault)` thresholds.
    thresholds: Vec<(Bound, Bound)>,
    groups: Vec<PackedGroup>,
    /// No Byzantine mass anywhere: the Byzantine lane masks are identically zero and
    /// their counter is skipped.
    crash_only: bool,
    plan: HitPlan,
}

impl PackedKernel {
    pub(crate) fn new<M: CountingModel + ?Sized>(
        model: &M,
        failure_model: &CorrelationModel,
    ) -> Self {
        let n = failure_model.len();
        assert_eq!(
            model.num_nodes(),
            n,
            "model and failure model disagree on the cluster size"
        );
        let thresholds: Vec<(Bound, Bound)> = failure_model
            .profiles()
            .iter()
            .map(|p| {
                (
                    fixed_point(p.byzantine_probability()),
                    fixed_point(p.fault_probability()),
                )
            })
            .collect();
        let groups: Vec<PackedGroup> = failure_model
            .groups()
            .iter()
            .map(|g| PackedGroup {
                shock: fixed_point(g.shock_probability),
                mode: g.shock_mode,
                members: g.members.clone(),
            })
            .collect();
        let crash_only = thresholds.iter().all(|&(b, _)| b == Bound::Never)
            && groups.iter().all(|g| g.mode != NodeState::Byzantine);
        let plan = if crash_only {
            let probe = |f: &dyn Fn(usize) -> bool| (0..=n).map(f).collect::<Vec<bool>>();
            let safe = prefix_predicate(&probe(&|c| model.is_safe_counts(c, 0)));
            let live = prefix_predicate(&probe(&|c| model.is_live_counts(c, 0)));
            let both = prefix_predicate(&probe(&|c| model.is_safe_and_live_counts(c, 0)));
            match (safe, live, both) {
                (Some(safe), Some(live), Some(both)) => HitPlan::Thresholds { safe, live, both },
                _ => Self::lut_plan(model, n),
            }
        } else {
            Self::lut_plan(model, n)
        };
        Self {
            n,
            thresholds,
            groups,
            crash_only,
            plan,
        }
    }

    /// Precomputes `(crashed, byzantine) → {safe, live, both}` for every reachable
    /// count pair.
    fn lut_plan<M: CountingModel + ?Sized>(model: &M, n: usize) -> HitPlan {
        let stride = n + 1;
        let mut flags = vec![0u8; stride * stride];
        for c in 0..=n {
            for b in 0..=(n - c) {
                let mut f = 0u8;
                if model.is_safe_counts(c, b) {
                    f |= FLAG_SAFE;
                }
                if model.is_live_counts(c, b) {
                    f |= FLAG_LIVE;
                }
                if model.is_safe_and_live_counts(c, b) {
                    f |= FLAG_BOTH;
                }
                flags[c * stride + b] = f;
            }
        }
        HitPlan::Lut { flags }
    }

    /// Draws and tallies `count` scenarios, 64 per pass (the final pass ragged when
    /// `count % 64 != 0`; surplus lanes are masked out of the tallies).
    pub(crate) fn sample_chunk<R: RngCore + ?Sized>(&self, rng: &mut R, count: usize) -> HitCounts {
        let n = self.n;
        let mut crash = vec![0u64; n];
        let mut byz = vec![0u64; n];
        let mut faults = VerticalCounter::new(n);
        let mut byz_count = VerticalCounter::new(n);
        let mut hits = HitCounts::default();
        let mut remaining = count;
        while remaining > 0 {
            let lanes = remaining.min(64);
            let valid: u64 = if lanes == 64 { !0 } else { (1u64 << lanes) - 1 };
            for (i, &(b, f)) in self.thresholds.iter().enumerate() {
                let (byz_mask, fault_mask) = split_masks(rng, b, f);
                byz[i] = byz_mask;
                crash[i] = fault_mask & !byz_mask;
            }
            for group in &self.groups {
                let fired = bernoulli_mask(rng, group.shock);
                if fired == 0 {
                    continue;
                }
                match group.mode {
                    NodeState::Byzantine => {
                        for &m in &group.members {
                            byz[m] |= fired;
                            crash[m] &= !fired;
                        }
                    }
                    NodeState::Crashed => {
                        for &m in &group.members {
                            crash[m] |= fired & !byz[m];
                        }
                    }
                    // Nothing constructs "repair" shocks today, but mirror the
                    // scalar override rule (Byzantine is never downgraded) exactly.
                    NodeState::Correct => {
                        for &m in &group.members {
                            crash[m] &= !fired;
                        }
                    }
                }
            }
            let (safe_mask, live_mask, both_mask) = match &self.plan {
                HitPlan::Thresholds { safe, live, both } => {
                    faults.reset();
                    for i in 0..n {
                        faults.add(crash[i] | byz[i]);
                    }
                    (safe.mask(&faults), live.mask(&faults), both.mask(&faults))
                }
                HitPlan::Lut { flags } => {
                    faults.reset();
                    for &mask in &crash {
                        faults.add(mask);
                    }
                    if !self.crash_only {
                        byz_count.reset();
                        for &mask in &byz {
                            byz_count.add(mask);
                        }
                    }
                    let stride = n + 1;
                    let mut cp = faults.planes;
                    let mut bp = byz_count.planes;
                    let (cd, bd) = (faults.depth, byz_count.depth);
                    let mut safe_mask = 0u64;
                    let mut live_mask = 0u64;
                    let mut both_mask = 0u64;
                    for lane in 0..lanes {
                        let mut c = 0usize;
                        for (k, plane) in cp.iter_mut().enumerate().take(cd) {
                            c |= ((*plane & 1) as usize) << k;
                            *plane >>= 1;
                        }
                        let mut b = 0usize;
                        if !self.crash_only {
                            for (k, plane) in bp.iter_mut().enumerate().take(bd) {
                                b |= ((*plane & 1) as usize) << k;
                                *plane >>= 1;
                            }
                        }
                        let f = flags[c * stride + b];
                        safe_mask |= ((f & FLAG_SAFE) as u64) << lane;
                        live_mask |= (((f & FLAG_LIVE) >> 1) as u64) << lane;
                        both_mask |= (((f & FLAG_BOTH) >> 2) as u64) << lane;
                    }
                    (safe_mask, live_mask, both_mask)
                }
            };
            hits.safe += (safe_mask & valid).count_ones() as usize;
            hits.live += (live_mask & valid).count_ones() as usize;
            hits.both += (both_mask & valid).count_ones() as usize;
            remaining -= lanes;
        }
        hits
    }
}

/// Estimates the reliability of a counting model with the bit-sliced batch kernel,
/// 64 scenarios per pass, across the persistent thread pool.
///
/// Deterministic for a fixed `seed` regardless of thread count (the chunked
/// `(seed, chunk)` scheme of [`crate::montecarlo`]); agrees with the scalar engine
/// statistically, not bit-for-bit (different RNG stream — see the module docs).
/// A zero sample budget saturates to one sample.
pub fn monte_carlo_reliability_packed_par<M: CountingModel + ?Sized>(
    model: &M,
    failure_model: &CorrelationModel,
    samples: usize,
    seed: u64,
) -> MonteCarloReport {
    let kernel = PackedKernel::new(model, failure_model);
    packed_par_with_kernel(&kernel, samples, seed)
}

/// Runs the packed kernel across the pool from an already-compiled [`PackedKernel`] —
/// the tail of [`monte_carlo_reliability_packed_par`], shared with the query API
/// ([`crate::query`]), whose planned cells compile the thresholds/LUT once per
/// (model, failure-model) group and reuse them across every cell of a sweep.
pub(crate) fn packed_par_with_kernel(
    kernel: &PackedKernel,
    samples: usize,
    seed: u64,
) -> MonteCarloReport {
    let samples = samples.max(1);
    let hits = map_sample_chunks(samples, seed, |rng, count| kernel.sample_chunk(rng, count))
        .into_iter()
        .fold(HitCounts::default(), std::ops::Add::add);
    report_from_counts(hits, samples, McKernel::Packed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::counting_reliability;
    use crate::deployment::Deployment;
    use crate::montecarlo::MC_CHUNK_SIZE;
    use crate::pbft_model::PbftModel;
    use crate::raft_model::RaftModel;
    use fault_model::correlation::CorrelationGroup;
    use fault_model::mode::FaultProfile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn crash_model(n: usize, p: f64) -> CorrelationModel {
        CorrelationModel::independent(vec![FaultProfile::crash_only(p); n])
    }

    #[test]
    fn fixed_point_handles_the_edges() {
        assert_eq!(fixed_point(0.0), Bound::Never);
        assert_eq!(fixed_point(-0.1), Bound::Never);
        assert_eq!(fixed_point(1.0), Bound::Always);
        assert_eq!(fixed_point(0.5), Bound::Fixed(1u64 << 63));
        // The largest f64 below 1: the threshold must stay below 2^64 (no wrap) and
        // land within a few thousand lattice points of the top.
        let just_below_one = f64::from_bits(1.0f64.to_bits() - 1);
        match fixed_point(just_below_one) {
            Bound::Fixed(t) => assert!(t > u64::MAX - 4096, "threshold {t} too far from 2^64"),
            other => panic!("expected a Fixed bound, got {other:?}"),
        }
    }

    #[test]
    fn split_masks_match_their_probabilities() {
        let mut rng = StdRng::seed_from_u64(1);
        let (p_byz, p_fault) = (0.1, 0.4);
        let (mut byz_bits, mut fault_bits) = (0u64, 0u64);
        const BLOCKS: u64 = 4_000;
        for _ in 0..BLOCKS {
            let (b, f) = split_masks(&mut rng, fixed_point(p_byz), fixed_point(p_fault));
            assert_eq!(b & !f, 0, "byzantine lanes must be faulty lanes");
            byz_bits += u64::from(b.count_ones());
            fault_bits += u64::from(f.count_ones());
        }
        let total = (64 * BLOCKS) as f64;
        assert!((byz_bits as f64 / total - p_byz).abs() < 0.01);
        assert!((fault_bits as f64 / total - p_fault).abs() < 0.01);
        // Degenerate bounds consume no randomness and give constant masks.
        let before = rng.clone();
        assert_eq!(split_masks(&mut rng, Bound::Never, Bound::Never), (0, 0));
        assert_eq!(split_masks(&mut rng, Bound::Never, Bound::Always), (0, !0));
        assert_eq!(
            split_masks(&mut rng, Bound::Always, Bound::Always),
            (!0, !0)
        );
        assert_eq!(rng, before, "degenerate bounds must not consume the stream");
    }

    #[test]
    fn vertical_counter_matches_a_scalar_recount() {
        let mut rng = StdRng::seed_from_u64(7);
        let masks: Vec<u64> = (0..11).map(|_| rng.next_u64()).collect();
        let mut counter = VerticalCounter::new(masks.len());
        for &m in &masks {
            counter.add(m);
        }
        for lane in 0..64 {
            let expected = masks.iter().filter(|&&m| m >> lane & 1 == 1).count();
            let mut got = 0usize;
            for k in 0..counter.depth {
                got |= ((counter.planes[k] >> lane & 1) as usize) << k;
            }
            assert_eq!(got, expected, "lane {lane}");
        }
        for k in 0..=masks.len() + 1 {
            let expected: u64 = (0..64)
                .filter(|&lane| masks.iter().filter(|&&m| m >> lane & 1 == 1).count() >= k)
                .fold(0, |acc, lane| acc | 1 << lane);
            assert_eq!(counter.ge_mask(k), expected, "ge_mask({k})");
        }
    }

    #[test]
    fn prefix_predicates_classify_monotone_tables() {
        assert_eq!(
            prefix_predicate(&[true, true, false]),
            Some(CountPredicate::AtMost(1))
        );
        assert_eq!(prefix_predicate(&[true; 4]), Some(CountPredicate::Always));
        assert_eq!(prefix_predicate(&[false; 3]), Some(CountPredicate::Never));
        assert_eq!(prefix_predicate(&[true, false, true]), None);
    }

    #[test]
    fn crash_only_raft_uses_the_threshold_plan_and_matches_exact_counting() {
        let model = RaftModel::standard(5);
        let deployment = Deployment::uniform_crash(5, 0.05);
        let kernel = PackedKernel::new(&model, &crash_model(5, 0.05));
        assert!(kernel.crash_only);
        assert!(matches!(kernel.plan, HitPlan::Thresholds { .. }));
        let exact = counting_reliability(&model, &deployment);
        let report = monte_carlo_reliability_packed_par(&model, &crash_model(5, 0.05), 200_000, 11);
        assert!(
            report.live.contains(exact.p_live),
            "exact {} outside [{}, {}]",
            exact.p_live,
            report.live.lower,
            report.live.upper
        );
        assert!((report.safe.value - 1.0).abs() < 1e-12);
        assert_eq!(report.samples, 200_000);
    }

    #[test]
    fn mixed_mode_pbft_uses_the_lut_plan_and_matches_exact_counting() {
        let model = PbftModel::standard(7);
        let deployment = Deployment::uniform_mixed(7, 0.05, 0.02);
        let target = CorrelationModel::independent(deployment.profiles().to_vec());
        let kernel = PackedKernel::new(&model, &target);
        assert!(!kernel.crash_only);
        assert!(matches!(kernel.plan, HitPlan::Lut { .. }));
        let exact = counting_reliability(&model, &deployment);
        let report = monte_carlo_reliability_packed_par(&model, &target, 200_000, 3);
        for (estimate, truth, what) in [
            (report.safe, exact.p_safe, "safe"),
            (report.live, exact.p_live, "live"),
            (report.safe_and_live, exact.p_safe_and_live, "safe&live"),
        ] {
            assert!(
                estimate.contains(truth),
                "{what}: exact {truth} outside [{}, {}]",
                estimate.lower,
                estimate.upper
            );
        }
    }

    #[test]
    fn correlated_shock_probability_is_recovered() {
        // Independent part cannot fail; the only route to losing liveness is the
        // full-cluster crash shock, so P[live] must equal 1 − shock.
        let shock = 0.3;
        let target =
            crash_model(5, 0.0).with_group(CorrelationGroup::crash_shock((0..5).collect(), shock));
        let model = RaftModel::standard(5);
        let report = monte_carlo_reliability_packed_par(&model, &target, 100_000, 5);
        assert!(
            report.live.contains(1.0 - shock),
            "1 - shock = {} outside [{}, {}]",
            1.0 - shock,
            report.live.lower,
            report.live.upper
        );
    }

    #[test]
    fn byzantine_shock_overrides_crash_lanes() {
        // Every node crashes independently with certainty; a certain Byzantine shock
        // must override all of them, so PBFT safety collapses exactly as the scalar
        // sampler's override rule dictates (Byzantine dominates crash).
        let target = CorrelationModel::independent(vec![FaultProfile::crash_only(1.0); 4])
            .with_group(CorrelationGroup::byzantine_shock((0..4).collect(), 1.0));
        let model = PbftModel::standard(4);
        let report = monte_carlo_reliability_packed_par(&model, &target, 1_000, 2);
        // 4 Byzantine nodes out of 4: never safe, never live.
        assert_eq!(report.safe.value, 0.0);
        assert_eq!(report.live.value, 0.0);
    }

    #[test]
    fn certain_crash_probability_needs_no_randomness() {
        let model = RaftModel::standard(3);
        let target = crash_model(3, 1.0);
        let report = monte_carlo_reliability_packed_par(&model, &target, 10_000, 9);
        assert_eq!(report.live.value, 0.0, "all nodes always crash");
        assert_eq!(report.safe.value, 1.0, "crashes never violate safety");
    }

    #[test]
    fn ragged_tail_blocks_are_masked_not_dropped() {
        let model = RaftModel::standard(9);
        let target = crash_model(9, 0.08);
        // Neither a multiple of 64 nor of the chunk size.
        let samples = 2 * MC_CHUNK_SIZE + 77;
        let report = monte_carlo_reliability_packed_par(&model, &target, samples, 21);
        assert_eq!(report.samples, samples);
        let exact = counting_reliability(&model, &Deployment::uniform_crash(9, 0.08));
        assert!(report.live.contains(exact.p_live));
    }

    #[test]
    fn packed_kernel_is_bit_identical_across_thread_counts() {
        let model = PbftModel::standard(7);
        let target = CorrelationModel::independent(
            (0..7)
                .map(|i| FaultProfile::new(0.02 * (i % 3) as f64, 0.01))
                .collect(),
        )
        .with_group(CorrelationGroup::byzantine_shock(vec![0, 1, 2], 0.005))
        .with_group(CorrelationGroup::crash_shock(vec![3, 4, 5, 6], 0.01));
        let samples = 3 * MC_CHUNK_SIZE + 17;
        let reference = monte_carlo_reliability_packed_par(&model, &target, samples, 42);
        for threads in [1usize, 2, 3, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let report =
                pool.install(|| monte_carlo_reliability_packed_par(&model, &target, samples, 42));
            assert_eq!(report, reference, "divergence at {threads} threads");
        }
    }

    #[test]
    fn zero_sample_budget_saturates_to_one_sample() {
        let model = RaftModel::standard(3);
        let report = monte_carlo_reliability_packed_par(&model, &crash_model(3, 0.1), 0, 1);
        assert_eq!(report.samples, 1);
        for e in [report.safe, report.live, report.safe_and_live] {
            assert!(e.value.is_finite() && 0.0 <= e.lower && e.upper <= 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "disagree on the cluster size")]
    fn size_mismatch_panics() {
        let model = RaftModel::standard(3);
        monte_carlo_reliability_packed_par(&model, &crash_model(4, 0.1), 10, 1);
    }
}
