//! Failure configurations.
//!
//! §3: "there are 2^N possible combinations of machine failures (failure
//! configurations)... By calculating how likely each failure configuration is, we can
//! compute the overall probability that an algorithm guarantees safety and liveness."
//! With both crash and Byzantine faults in play the space is 3^N; a [`FailureConfig`]
//! is one point of that space.

use fault_model::mode::NodeState;
use quorum::set::NodeSet;

use crate::deployment::Deployment;

/// One joint assignment of a state (correct / crashed / Byzantine) to every node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FailureConfig {
    states: Vec<NodeState>,
}

impl FailureConfig {
    /// Creates a configuration from explicit per-node states.
    pub fn new(states: Vec<NodeState>) -> Self {
        assert!(!states.is_empty(), "configuration needs at least one node");
        Self { states }
    }

    /// The all-correct configuration over `n` nodes.
    pub fn all_correct(n: usize) -> Self {
        Self::new(vec![NodeState::Correct; n])
    }

    /// A configuration where exactly the nodes in `crashed` crashed.
    pub fn with_crashed(n: usize, crashed: &[usize]) -> Self {
        let mut states = vec![NodeState::Correct; n];
        for &i in crashed {
            states[i] = NodeState::Crashed;
        }
        Self::new(states)
    }

    /// A configuration where exactly the nodes in `byzantine` are Byzantine.
    pub fn with_byzantine(n: usize, byzantine: &[usize]) -> Self {
        let mut states = vec![NodeState::Correct; n];
        for &i in byzantine {
            states[i] = NodeState::Byzantine;
        }
        Self::new(states)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the configuration covers no nodes (never true).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Per-node states.
    pub fn states(&self) -> &[NodeState] {
        &self.states
    }

    /// Mutable per-node states, for samplers that reuse one configuration as a
    /// scratch buffer instead of allocating per draw (the node count is fixed; only
    /// the states can be rewritten).
    pub fn states_mut(&mut self) -> &mut [NodeState] {
        &mut self.states
    }

    /// State of one node.
    pub fn state(&self, node: usize) -> NodeState {
        self.states[node]
    }

    /// Number of correct nodes.
    pub fn num_correct(&self) -> usize {
        self.states.iter().filter(|s| s.is_correct()).count()
    }

    /// Number of crashed nodes.
    pub fn num_crashed(&self) -> usize {
        self.states
            .iter()
            .filter(|&&s| s == NodeState::Crashed)
            .count()
    }

    /// Number of Byzantine nodes.
    pub fn num_byzantine(&self) -> usize {
        self.states
            .iter()
            .filter(|&&s| s == NodeState::Byzantine)
            .count()
    }

    /// Number of faulty nodes (crashed or Byzantine).
    pub fn num_faulty(&self) -> usize {
        self.len() - self.num_correct()
    }

    /// The set of correct nodes.
    pub fn correct_set(&self) -> NodeSet {
        NodeSet::from_bools(
            &self
                .states
                .iter()
                .map(|s| s.is_correct())
                .collect::<Vec<_>>(),
        )
    }

    /// The set of faulty nodes (crashed or Byzantine).
    pub fn faulty_set(&self) -> NodeSet {
        NodeSet::from_bools(
            &self
                .states
                .iter()
                .map(|s| s.is_faulty())
                .collect::<Vec<_>>(),
        )
    }

    /// The set of Byzantine nodes.
    pub fn byzantine_set(&self) -> NodeSet {
        NodeSet::from_bools(
            &self
                .states
                .iter()
                .map(|&s| s == NodeState::Byzantine)
                .collect::<Vec<_>>(),
        )
    }

    /// Probability of this exact configuration under `deployment` (independent nodes).
    pub fn probability(&self, deployment: &Deployment) -> f64 {
        assert_eq!(
            self.len(),
            deployment.len(),
            "configuration and deployment sizes differ"
        );
        self.states
            .iter()
            .zip(deployment.profiles())
            .map(|(&s, p)| p.probability_of(s))
            .product()
    }
}

impl std::fmt::Display for FailureConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for s in &self.states {
            let c = match s {
                NodeState::Correct => 'C',
                NodeState::Crashed => 'X',
                NodeState::Byzantine => 'B',
            };
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_helpers() {
        let c = FailureConfig::new(vec![
            NodeState::Correct,
            NodeState::Crashed,
            NodeState::Byzantine,
            NodeState::Correct,
        ]);
        assert_eq!(c.num_correct(), 2);
        assert_eq!(c.num_crashed(), 1);
        assert_eq!(c.num_byzantine(), 1);
        assert_eq!(c.num_faulty(), 2);
        assert_eq!(c.correct_set().to_vec(), vec![0, 3]);
        assert_eq!(c.faulty_set().to_vec(), vec![1, 2]);
        assert_eq!(c.byzantine_set().to_vec(), vec![2]);
        assert_eq!(format!("{c}"), "CXBC");
    }

    #[test]
    fn constructors() {
        let crashed = FailureConfig::with_crashed(5, &[1, 3]);
        assert_eq!(crashed.num_crashed(), 2);
        let byz = FailureConfig::with_byzantine(5, &[0]);
        assert_eq!(byz.num_byzantine(), 1);
        assert_eq!(FailureConfig::all_correct(4).num_faulty(), 0);
    }

    #[test]
    fn probability_under_uniform_deployment() {
        let d = Deployment::uniform_crash(3, 0.01);
        let all_up = FailureConfig::all_correct(3);
        assert!((all_up.probability(&d) - 0.99f64.powi(3)).abs() < 1e-12);
        let one_down = FailureConfig::with_crashed(3, &[1]);
        assert!((one_down.probability(&d) - 0.01 * 0.99f64.powi(2)).abs() < 1e-12);
    }

    #[test]
    fn probability_of_byzantine_state_uses_byzantine_probability() {
        let d = Deployment::uniform_mixed(2, 0.04, 0.01);
        let config = FailureConfig::new(vec![NodeState::Byzantine, NodeState::Correct]);
        assert!((config.probability(&d) - 0.01 * 0.95).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sizes differ")]
    fn probability_checks_sizes() {
        let d = Deployment::uniform_crash(3, 0.01);
        FailureConfig::all_correct(4).probability(&d);
    }
}
