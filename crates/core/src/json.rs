//! Minimal hand-rolled JSON: a value tree, a writer, and a parser.
//!
//! The query API ([`crate::query`]) renders [`AnalysisReport`](crate::query::AnalysisReport)s
//! to JSON so sweeps can be dumped for external tooling (plots, dashboards, diffing
//! across runs). The workspace builds offline against vendored crates only, so this
//! module implements the small slice of JSON the reports need by hand instead of
//! pulling in serde:
//!
//! * **Numbers round-trip.** Finite `f64`s are written with Rust's shortest-
//!   representation formatting (`{}`), which is guaranteed to parse back to the
//!   identical bits — probabilities in a report survive a JSON round trip exactly.
//! * **Non-finite policy.** JSON has no `NaN`/`Infinity` literal; [`JsonValue::number`]
//!   maps them to `null`, and the writer refuses to invent non-standard tokens.
//! * **Parser for tests.** [`JsonValue::parse`] is a strict recursive-descent parser
//!   (objects, arrays, strings with escapes, numbers, literals) used by the
//!   round-trip tests; it is not a streaming parser and is not meant for untrusted
//!   multi-megabyte inputs.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Object keys keep insertion order (reports render columns in a
/// stable order); [`JsonValue::get`] is a linear scan, fine at report sizes.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` — also the encoding of every non-finite number.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. Constructors must uphold finiteness; use
    /// [`JsonValue::number`] rather than building the variant directly.
    Number(f64),
    /// A string (escaped on write, unescaped on parse).
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object as an ordered key/value list.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Wraps a number, mapping non-finite values to `null` (the serialization
    /// policy for `NaN`/`±inf` — JSON has no token for them).
    pub fn number(value: f64) -> JsonValue {
        if value.is_finite() {
            JsonValue::Number(value)
        } else {
            JsonValue::Null
        }
    }

    /// Wraps an optional number (`None` and non-finite both become `null`).
    pub fn optional(value: Option<f64>) -> JsonValue {
        value.map_or(JsonValue::Null, JsonValue::number)
    }

    /// Wraps a string.
    pub fn string(value: impl Into<String>) -> JsonValue {
        JsonValue::String(value.into())
    }

    /// The value at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// Parses a JSON document. Strict: exactly one value, nothing but whitespace
    /// around it, no trailing commas, no comments.
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after the JSON value"));
        }
        Ok(value)
    }

    /// The value as a single-line compact document (no whitespace) — the NDJSON
    /// writer path: a streamed record is one `to_compact_string` plus `'\n'`, so
    /// a server never buffers more than one record. Numbers keep the same
    /// shortest-round-trip formatting as the pretty writer; only whitespace
    /// differs, so `parse` reads both forms back to the identical tree.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(v) => {
                debug_assert!(v.is_finite(), "JsonValue::Number holds finite values");
                out.push_str(&format!("{v}"));
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            JsonValue::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_indented(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(v) => {
                debug_assert!(v.is_finite(), "JsonValue::Number holds finite values");
                // Rust's Display for f64 is the shortest representation that parses
                // back to the same bits — exactly the round-trip contract.
                out.push_str(&format!("{v}"));
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_indented(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_indented(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for JsonValue {
    /// Pretty-prints with two-space indentation (the style of the committed
    /// `BENCH_analysis.json`); the output is valid JSON either way.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_indented(&mut out, 0);
        f.write_str(&out)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why a JSON document failed to parse: a message plus the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input where it went wrong.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        let mut seen = BTreeMap::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            if seen.insert(key.clone(), ()).is_some() {
                return Err(self.error(&format!("duplicate object key \"{key}\"")));
            }
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            members.push((key, self.value()?));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Advance over the plain (unescaped, ASCII-or-multibyte) run in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("truncated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs are not produced by our writer; accept
                            // only scalar values and reject lone surrogates.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("invalid \\u escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(_) => return Err(self.error("unescaped control character in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.error("non-hex digit in \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.error("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_writer_round_trips_bit_exactly() {
        // Awkward doubles: subnormals, extremes, negative zero, long fractions.
        let values = [
            0.1 + 0.2,
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 8.0, // subnormal
            f64::MAX,
            -0.0,
            1.0 / 3.0,
            2.225_073_858_507_201e-308,
            9.869604401089358,
        ];
        let doc = JsonValue::Object(vec![
            (
                "values".to_string(),
                JsonValue::Array(values.iter().map(|&v| JsonValue::number(v)).collect()),
            ),
            ("label".to_string(), JsonValue::string("a \"quoted\"\nline")),
        ]);
        let compact = doc.to_compact_string();
        assert!(
            !compact.contains('\n') && !compact.contains(": "),
            "compact output must be one whitespace-free line: {compact}"
        );
        let reparsed = JsonValue::parse(&compact).expect("compact output parses");
        let bits: Vec<u64> = reparsed.get("values").unwrap().as_array().unwrap()[..]
            .iter()
            .map(|v| v.as_f64().unwrap().to_bits())
            .collect();
        let expected: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, expected, "every f64 must round-trip bit-exactly");
        // Compact and pretty forms parse to the identical tree.
        assert_eq!(reparsed, JsonValue::parse(&doc.to_string()).unwrap());
    }

    #[test]
    fn compact_writer_maps_non_finite_to_null() {
        let doc = JsonValue::Array(vec![
            JsonValue::number(f64::NAN),
            JsonValue::number(f64::INFINITY),
            JsonValue::number(f64::NEG_INFINITY),
            JsonValue::number(1.0),
        ]);
        assert_eq!(doc.to_compact_string(), "[null,null,null,1]");
    }

    #[test]
    fn compact_empty_containers() {
        assert_eq!(JsonValue::Array(vec![]).to_compact_string(), "[]");
        assert_eq!(JsonValue::Object(vec![]).to_compact_string(), "{}");
    }

    #[test]
    fn scalars_render_and_parse() {
        assert_eq!(JsonValue::Null.to_string(), "null");
        assert_eq!(JsonValue::Bool(true).to_string(), "true");
        assert_eq!(JsonValue::number(0.25).to_string(), "0.25");
        assert_eq!(JsonValue::string("hi").to_string(), "\"hi\"");
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("-1.5e-3").unwrap().as_f64(), Some(-1.5e-3));
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert!(JsonValue::number(f64::NAN).is_null());
        assert!(JsonValue::number(f64::INFINITY).is_null());
        assert!(JsonValue::number(f64::NEG_INFINITY).is_null());
        assert!(JsonValue::optional(None).is_null());
        assert_eq!(JsonValue::optional(Some(1.0)), JsonValue::Number(1.0));
    }

    #[test]
    fn f64_round_trips_bit_exactly() {
        for v in [
            0.1,
            1.0 / 3.0,
            0.05f64.powi(10),
            1e-300,
            -2.2250738585072014e-308,
            f64::MAX,
            0.30000000000000004,
            0.999,
            1.0 - 1e-12,
        ] {
            let rendered = JsonValue::number(v).to_string();
            let back = JsonValue::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} -> {rendered} -> {back}");
        }
    }

    #[test]
    fn strings_round_trip_with_escapes() {
        for s in [
            "plain",
            "with \"quotes\"",
            "tab\tnewline\n",
            "unicode é ✓",
            "back\\slash",
        ] {
            let rendered = JsonValue::string(s).to_string();
            assert_eq!(
                JsonValue::parse(&rendered).unwrap().as_str(),
                Some(s),
                "via {rendered}"
            );
        }
        assert_eq!(
            JsonValue::parse("\"\\u0041\\u00e9\"").unwrap().as_str(),
            Some("Aé")
        );
    }

    #[test]
    fn nested_structures_round_trip() {
        let doc = JsonValue::Object(vec![
            ("name".into(), JsonValue::string("sweep")),
            (
                "cells".into(),
                JsonValue::Array(vec![
                    JsonValue::Object(vec![
                        ("n".into(), JsonValue::number(5.0)),
                        ("p".into(), JsonValue::number(0.01)),
                        ("ess".into(), JsonValue::Null),
                    ]),
                    JsonValue::Object(vec![]),
                ]),
            ),
            ("empty".into(), JsonValue::Array(vec![])),
        ]);
        let rendered = doc.to_string();
        let parsed = JsonValue::parse(&rendered).unwrap();
        assert_eq!(parsed, doc);
        let first = &parsed.get("cells").unwrap().as_array().unwrap()[0];
        assert_eq!(first.get("p").and_then(JsonValue::as_f64), Some(0.01));
        assert!(first.get("ess").unwrap().is_null());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\": 1,}",
            "nul",
            "\"unterminated",
            "1 2",
            "{\"a\": 1, \"a\": 2}",
            "[01x]",
            "\"\\q\"",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    proptest::proptest! {
        #[test]
        fn arbitrary_finite_numbers_round_trip(bits in 0u64..u64::MAX) {
            let v = f64::from_bits(bits);
            if v.is_finite() {
                let rendered = JsonValue::number(v).to_string();
                let back = JsonValue::parse(&rendered).unwrap().as_f64().unwrap();
                // -0.0 and 0.0 compare equal but have distinct bits; Display writes
                // "-0" for -0.0, which parses back to -0.0, so bits are preserved.
                proptest::prop_assert_eq!(v.to_bits(), back.to_bits());
            }
        }
    }
}
