//! The hidden safety/liveness trade-off (§3.2).
//!
//! "Consider f = 1 and two PBFT systems, one with 3f+1 = 4 nodes and the other with
//! 3f+2 = 5 nodes. In the f-threshold model, both systems tolerate 1 fault... However, in
//! the probabilistic world, using 5 nodes improves PBFT safety by 42–60× with a small
//! 1.67× decrease in liveness compared to 4 nodes — in fact, the 5-node system is more
//! safe than a 7-node system, which is 40% more expensive to deploy and operate."
//! This module sweeps cluster/quorum sizes and exposes those comparison factors.

use crate::analyzer::{analyze, ReliabilityReport};
use crate::deployment::Deployment;
use crate::pbft_model::PbftModel;
use crate::protocol::CountingModel;
use crate::raft_model::RaftModel;

/// One point of a safety/liveness trade-off sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffPoint {
    /// Cluster size.
    pub n: usize,
    /// Per-node fault probability used for the sweep.
    pub p: f64,
    /// Reliability at this point.
    pub report: ReliabilityReport,
    /// Relative deployment cost (proportional to the node count).
    pub relative_cost: f64,
}

/// Sweeps PBFT over the given cluster sizes at a uniform Byzantine fault probability.
pub fn pbft_sweep(sizes: &[usize], p: f64) -> Vec<TradeoffPoint> {
    sizes
        .iter()
        .map(|&n| TradeoffPoint {
            n,
            p,
            report: analyze(
                &PbftModel::standard(n),
                &Deployment::uniform_byzantine(n, p),
            ),
            relative_cost: n as f64,
        })
        .collect()
}

/// Sweeps Raft over the given cluster sizes at a uniform crash probability.
pub fn raft_sweep(sizes: &[usize], p: f64) -> Vec<TradeoffPoint> {
    sizes
        .iter()
        .map(|&n| TradeoffPoint {
            n,
            p,
            report: analyze(&RaftModel::standard(n), &Deployment::uniform_crash(n, p)),
            relative_cost: n as f64,
        })
        .collect()
}

/// Sweeps an arbitrary counting-model family over cluster sizes, analyzing each against
/// a deployment produced by `deployment_for`.
pub fn sweep<M, FM, FD>(sizes: &[usize], model_for: FM, deployment_for: FD) -> Vec<TradeoffPoint>
where
    M: CountingModel,
    FM: Fn(usize) -> M,
    FD: Fn(usize) -> Deployment,
{
    sizes
        .iter()
        .map(|&n| {
            let deployment = deployment_for(n);
            TradeoffPoint {
                n,
                p: deployment.mean_fault_probability(),
                report: analyze(&model_for(n), &deployment),
                relative_cost: n as f64,
            }
        })
        .collect()
}

/// Pairwise comparison of two trade-off points (typically consecutive cluster sizes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffComparison {
    /// How many times smaller the probability of a safety violation becomes when moving
    /// from `a` to `b` (>1 means `b` is safer).
    pub safety_improvement: f64,
    /// How many times larger the probability of losing liveness becomes when moving from
    /// `a` to `b` (>1 means `b` is less live).
    pub liveness_degradation: f64,
    /// Relative cost of `b` over `a`.
    pub cost_ratio: f64,
}

/// Compares two trade-off points, `a` → `b`.
pub fn compare(a: &TradeoffPoint, b: &TradeoffPoint) -> TradeoffComparison {
    let ratio = |num: f64, den: f64| {
        if den == 0.0 {
            f64::INFINITY
        } else {
            num / den
        }
    };
    TradeoffComparison {
        safety_improvement: ratio(a.report.unsafety(), b.report.unsafety()),
        liveness_degradation: ratio(b.report.unliveness(), a.report.unliveness()),
        cost_ratio: b.relative_cost / a.relative_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tradeoff_four_vs_five_node_pbft() {
        let points = pbft_sweep(&[4, 5, 7], 0.01);
        let four_vs_five = compare(&points[0], &points[1]);
        // "improves PBFT safety by 42–60x" — the exact factor at p=1% is ~60x.
        assert!(
            four_vs_five.safety_improvement > 40.0 && four_vs_five.safety_improvement < 75.0,
            "safety improvement {}",
            four_vs_five.safety_improvement
        );
        // "with a small 1.67x decrease in liveness".
        assert!(
            (four_vs_five.liveness_degradation - 1.67).abs() < 0.1,
            "liveness degradation {}",
            four_vs_five.liveness_degradation
        );
        // "the 5-node system is more safe than a 7-node system".
        assert!(points[1].report.safe.probability() > points[2].report.safe.probability());
        // "... which is 40% more expensive".
        assert!((points[2].relative_cost / points[1].relative_cost - 1.4).abs() < 1e-12);
    }

    #[test]
    fn safety_improvement_shrinks_as_nodes_get_flakier() {
        // The improvement factor of 5 over 4 nodes scales roughly like 1/p (≈60x at 1%,
        // ≈15x at 4%); the paper's 42-60x band corresponds to p around 1%.
        let mut last = f64::INFINITY;
        for p in [0.005, 0.01, 0.02, 0.04] {
            let points = pbft_sweep(&[4, 5], p);
            let c = compare(&points[0], &points[1]);
            assert!(
                c.safety_improvement > 10.0 && c.safety_improvement < 150.0,
                "p={p}: {}",
                c.safety_improvement
            );
            assert!(c.safety_improvement < last, "factor should shrink with p");
            last = c.safety_improvement;
        }
    }

    #[test]
    fn raft_sweep_matches_table2_column() {
        let points = raft_sweep(&[3, 5, 7, 9], 0.08);
        assert!((points[0].report.safe_and_live.probability() - 0.9818).abs() < 1e-3);
        assert!((points[3].report.safe_and_live.probability() - 0.9997).abs() < 1e-4);
        // Larger clusters are monotonically more reliable at fixed p.
        for w in points.windows(2) {
            assert!(
                w[1].report.safe_and_live.probability() >= w[0].report.safe_and_live.probability()
            );
        }
    }

    #[test]
    fn generic_sweep_accepts_heterogeneous_deployments() {
        let points = sweep(&[3, 5], RaftModel::standard, |n| {
            Deployment::uniform_crash(n, 0.02)
        });
        assert_eq!(points.len(), 2);
        assert!((points[0].p - 0.02).abs() < 1e-12);
    }

    #[test]
    fn compare_handles_perfect_safety() {
        let points = raft_sweep(&[3, 5], 0.01);
        let c = compare(&points[0], &points[1]);
        // Raft safety is structural (probability 1), so the improvement factor is not
        // finite-meaningful; liveness still degrades/improves sensibly.
        assert!(
            c.safety_improvement.is_nan()
                || c.safety_improvement.is_infinite()
                || c.safety_improvement == 1.0
                || c.safety_improvement > 0.0
        );
        assert!(c.liveness_degradation < 1.0, "5 nodes are more live than 3");
    }
}
