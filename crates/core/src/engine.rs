//! The unified analysis-engine layer.
//!
//! The paper's method is one pipeline — enumerate → count → sample — but the seed grew
//! it as three disconnected entry points that every caller had to hand-select. This
//! module unifies them behind one abstraction:
//!
//! * [`Scenario`] — what the analysis runs against: an independent [`Deployment`] or a
//!   correlated [`CorrelationModel`].
//! * [`AnalysisEngine`] — the common trait of the five engines, wrapping
//!   [`crate::enumeration`], [`crate::counting`], [`crate::rare_event`],
//!   [`crate::montecarlo`] and [`crate::simulation`].
//! * [`Budget`] — how much work (exact configurations, Monte Carlo samples,
//!   simulation trials) the caller is willing to spend, the sampling seed, and the
//!   rare-event knobs (proposal tilt, ESS floor, selection threshold).
//! * [`select_engine`] — the auto-selector: exact counting for independent counting
//!   models, exhaustive enumeration for small non-counting models, importance
//!   sampling when the failure event is too rare for plain sampling, parallel Monte
//!   Carlo for everything else. The simulation engine is deliberately outside the
//!   auto-selection registry — it measures the executable system rather than
//!   evaluating the model, and runs only when explicitly requested (pinned, or via
//!   the query API's cross-validation mode).
//! * [`AnalysisOutcome`] — the report, tagged with the engine that produced it and the
//!   sampling confidence interval when one exists.
//!
//! Callers should reach for [`crate::analyzer::analyze_auto`], the front door over this
//! module; the engine structs are public for tests, benches and tools that need to pin
//! an engine deliberately (e.g. cross-engine agreement checks).

use fault_model::correlation::CorrelationModel;

use crate::analyzer::ReliabilityReport;
use crate::counting::counting_reliability;
use crate::deployment::Deployment;
use crate::enumeration::enumerate_reliability;
use crate::montecarlo::{monte_carlo_reliability_par_kernel_lanes, McKernel, MonteCarloReport};
use crate::protocol::ProtocolModel;
use crate::rare_event::RareEventReport;
use crate::simulation::SimulationReport;
// Re-exported so all five engine structs are importable from the engine layer.
pub use crate::rare_event::ImportanceSamplingEngine;
pub use crate::simulation::SimulationEngine;

/// What a reliability analysis runs against.
///
/// Borrowed and `Copy`, so wrapping an existing deployment or correlation model costs
/// nothing at the call site.
#[derive(Debug, Clone, Copy)]
pub enum Scenario<'a> {
    /// Independent per-node fault profiles — the §3 setting; exact engines apply.
    Independent(&'a Deployment),
    /// A correlated failure model — the §2(3) setting; only sampling applies.
    Correlated(&'a CorrelationModel),
}

impl Scenario<'_> {
    /// Number of nodes in the scenario.
    pub fn len(&self) -> usize {
        match self {
            Scenario::Independent(d) => d.len(),
            Scenario::Correlated(c) => c.len(),
        }
    }

    /// Whether the scenario covers no nodes.
    ///
    /// Never true for well-formed inputs — [`Deployment`] rejects zero nodes at
    /// construction — but a [`CorrelationModel`] over an empty profile list can reach
    /// this layer. The analyzer front door
    /// ([`crate::analyzer::analyze_scenario`]) rejects empty scenarios with
    /// [`AnalysisError::EmptyScenario`](crate::analyzer::AnalysisError); the
    /// lower-level [`select_engine`] / [`run_selected`] panic with a clear message
    /// rather than returning a vacuous report.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether failures are correlated (with at least one active correlation group).
    pub fn is_correlated(&self) -> bool {
        match self {
            Scenario::Independent(_) => false,
            Scenario::Correlated(c) => c.is_correlated(),
        }
    }

    /// The per-node fault profiles, whichever form the scenario takes. Borrowed — this
    /// is what the engines' admissibility checks consume on the hot path.
    pub fn profiles(&self) -> &'_ [fault_model::mode::FaultProfile] {
        match self {
            Scenario::Independent(d) => d.profiles(),
            Scenario::Correlated(c) => c.profiles(),
        }
    }

    /// Whether the scenario is effectively independent (an independent deployment, or
    /// a correlation model with no active groups) and the exact engines therefore
    /// apply. Allocation-free, unlike [`Scenario::as_independent`].
    pub fn is_independent(&self) -> bool {
        !matches!(self, Scenario::Correlated(c) if c.is_correlated())
    }

    /// The independent deployment, if this scenario is one (also accepts a correlation
    /// model with no active groups, which is independent in all but name).
    ///
    /// Allocates for the correlated-but-groupless case; engines on the hot path borrow
    /// via [`Scenario::Independent`] directly and only fall back to this for that case.
    pub fn as_independent(&self) -> Option<Deployment> {
        match self {
            Scenario::Independent(d) => Some((*d).clone()),
            Scenario::Correlated(c) if !c.is_correlated() => {
                Some(Deployment::from_profiles(c.profiles().to_vec()))
            }
            Scenario::Correlated(_) => None,
        }
    }

    /// The scenario as a correlation model (trivially independent when no groups
    /// exist) — the form the Monte Carlo sampler consumes.
    pub fn to_correlation_model(&self) -> CorrelationModel {
        match self {
            Scenario::Independent(d) => CorrelationModel::independent(d.profiles().to_vec()),
            Scenario::Correlated(c) => (*c).clone(),
        }
    }
}

impl<'a> From<&'a Deployment> for Scenario<'a> {
    fn from(deployment: &'a Deployment) -> Self {
        Scenario::Independent(deployment)
    }
}

impl<'a> From<&'a CorrelationModel> for Scenario<'a> {
    fn from(model: &'a CorrelationModel) -> Self {
        Scenario::Correlated(model)
    }
}

/// Identifies one of the five analysis engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineChoice {
    /// Exhaustive enumeration of failure configurations (exact, exponential).
    Enumeration,
    /// Dynamic programming over fault counts (exact, O(N³), counting models only).
    Counting,
    /// Importance sampling with per-node probability tilting (weighted estimate with
    /// confidence interval and ESS diagnostic; for rare failure events).
    ImportanceSampling,
    /// Parallel Monte Carlo sampling (estimate with confidence interval).
    MonteCarlo,
    /// Empirical discrete-event simulation of the executable protocol under sampled
    /// fault schedules ([`crate::simulation::SimulationEngine`]). Never auto-selected
    /// — it measures the *system* rather than the model, so it only runs when a
    /// caller explicitly asks for empirical validation.
    Simulation,
}

impl std::fmt::Display for EngineChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EngineChoice::Enumeration => "enumeration",
            EngineChoice::Counting => "counting",
            EngineChoice::ImportanceSampling => "importance-sampling",
            EngineChoice::MonteCarlo => "monte-carlo",
            EngineChoice::Simulation => "simulation",
        })
    }
}

/// How much work an [`analyze_auto`](crate::analyzer::analyze_auto) call may spend, and
/// the seed sampling uses when it is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Budget {
    /// Maximum number of failure configurations exhaustive enumeration may visit before
    /// the selector falls back to sampling.
    pub max_enumeration_configs: u64,
    /// Maximum number of nodes the O(N³) counting engine may analyze exactly before
    /// the selector falls back to sampling.
    pub max_counting_nodes: usize,
    /// Number of samples the sampling engines (Monte Carlo, importance sampling) draw.
    pub monte_carlo_samples: usize,
    /// Seed for the sampling engines (results are deterministic per seed).
    pub seed: u64,
    /// Proposal tilt of the importance-sampling engine: every fault probability is
    /// multiplied by this factor (floored at the target, capped below 1). `0.0` (the
    /// default) selects the adaptive per-node proposal learned by a cross-entropy
    /// pilot — see [`crate::rare_event::Proposal::adaptive`].
    pub rare_event_tilt: f64,
    /// Minimum effective sample size the importance-sampling engine must reach; if a
    /// run's ESS falls below this floor the engine escalates once with a doubled
    /// sample budget before reporting.
    pub min_effective_samples: f64,
    /// Failure probabilities below this threshold route to the importance-sampling
    /// engine when no exact engine applies (see
    /// [`crate::rare_event::naive_failure_estimate`]).
    pub rare_event_threshold: f64,
    /// Which sampling kernel the Monte Carlo engine runs: `Auto` (the default)
    /// selects the bit-sliced packed kernel ([`crate::packed`]) whenever the model
    /// supports counting and the zero-allocation scalar kernel otherwise; `Scalar`
    /// and `Packed` force a kernel (for benchmarks and cross-kernel agreement
    /// tests).
    pub mc_kernel: McKernel,
    /// Pass width of the packed kernel, in 64-lane `u64` words (`1..=`
    /// [`MAX_LANE_WORDS`](crate::packed::MAX_LANE_WORDS)): how many bit-sliced
    /// blocks one pass runs in lockstep. Results are bit-identical at every width —
    /// each block draws its own lane stream (see [`crate::packed`]) — so this is
    /// purely a throughput knob, defaulted to the fastest width and exposed for the
    /// `packed-width` benchmarks and cross-width agreement tests.
    pub mc_lane_words: usize,
    /// How much work the discrete-event simulation engine
    /// ([`crate::simulation::SimulationEngine`]) spends when it runs: trial count,
    /// virtual-time horizon, and client workload per trial.
    pub sim: SimBudget,
    /// The second-order (epistemic) axis: when set, every planned cell
    /// additionally runs `draws` posterior parameter draws through its engine
    /// and reports an epistemic credible interval next to the per-draw
    /// aleatoric one — see [`crate::epistemic`]. `None` (the default) keeps
    /// the first-order point-estimate behavior, and a budget of one draw
    /// degenerates to it bit-for-bit.
    pub epistemic: Option<EpistemicBudget>,
}

/// The second-order analysis budget: how many posterior draws to run per cell,
/// the Beta posterior over the fault-probability *scale* they are drawn from,
/// and the credible level of the reported epistemic interval.
///
/// The constructors are deliberately assert-free — a budget arriving over the
/// wire (the `"posterior"` query key of `repro serve`) must fail at plan time
/// with a recoverable [`InvalidBudget`], not a panic. [`Budget::validate`]
/// enforces the ranges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpistemicBudget {
    /// Number of posterior parameter draws per cell. Must be positive; a
    /// single draw degenerates to the first-order report (no epistemic block).
    pub draws: usize,
    /// `alpha` hyperparameter of the Beta posterior (e.g. failures + 1/2
    /// under the Jeffreys update). Must be finite and positive.
    pub alpha: f64,
    /// `beta` hyperparameter of the Beta posterior (e.g. successes + 1/2
    /// under the Jeffreys update). Must be finite and positive.
    pub beta: f64,
    /// Credible level of the reported epistemic interval, strictly inside
    /// `(0, 1)`; defaults to [`EpistemicBudget::DEFAULT_LEVEL`].
    pub level: f64,
}

impl EpistemicBudget {
    /// The default credible level of the epistemic interval (a central 90%
    /// interval — the level the calibration diagnostics in
    /// [`crate::epistemic`] are tested at).
    pub const DEFAULT_LEVEL: f64 = 0.9;

    /// An epistemic budget of `draws` posterior draws from Beta(alpha, beta)
    /// at the default credible level. No argument checking here — see
    /// [`Budget::validate`].
    pub fn new(draws: usize, alpha: f64, beta: f64) -> Self {
        Self {
            draws,
            alpha,
            beta,
            level: Self::DEFAULT_LEVEL,
        }
    }

    /// Sets the credible level of the reported epistemic interval (validated
    /// at plan time, not here).
    pub fn with_level(mut self, level: f64) -> Self {
        self.level = level;
        self
    }
}

/// The adversarial fault environment a simulation trial runs inside, *on top of*
/// the sampled crash/Byzantine schedule. The analytic engines cannot see any of
/// these — they model boolean per-node faults only — which is exactly the point:
/// environments are where [`validate_with_simulation`](crate::query::Query::validate_with_simulation)
/// is expected to surface divergence rather than agreement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum FaultEnvironment {
    /// LAN network, no extra events: the baseline the analytic model describes.
    #[default]
    Clean,
    /// The preferred leader / view-0 primary goes gray (alive but ~1000x slow) at
    /// a sampled time inside the fault window and never recovers. Liveness hinges
    /// on election timeouts and the view-change watchdog noticing a node that is
    /// not dead.
    GrayPrimary,
    /// The cluster splits into two groups (the pinned leader on the minority
    /// side) at a sampled time, healing at half the horizon. Commits stall until
    /// the heal; whether they recover within the horizon is the empirical
    /// question.
    PartitionHeal,
    /// A WAN with a heavy-tailed (bounded-Pareto) delay distribution and light
    /// loss, plus a sampled asymmetric link-quality override: one direction of
    /// one link turns lossy mid-window while the reverse stays clean.
    WanLossy,
}

impl FaultEnvironment {
    /// Every environment, in presentation order.
    pub const ALL: [FaultEnvironment; 4] = [
        FaultEnvironment::Clean,
        FaultEnvironment::GrayPrimary,
        FaultEnvironment::PartitionHeal,
        FaultEnvironment::WanLossy,
    ];

    /// Stable label used in cell labels, tables, and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            FaultEnvironment::Clean => "clean",
            FaultEnvironment::GrayPrimary => "gray-primary",
            FaultEnvironment::PartitionHeal => "partition-heal",
            FaultEnvironment::WanLossy => "wan-lossy",
        }
    }

    /// Stable small integer for cache keys and seed salting.
    pub fn key(&self) -> u64 {
        match self {
            FaultEnvironment::Clean => 0,
            FaultEnvironment::GrayPrimary => 1,
            FaultEnvironment::PartitionHeal => 2,
            FaultEnvironment::WanLossy => 3,
        }
    }

    /// Parses a label as produced by [`FaultEnvironment::label`].
    pub fn from_label(label: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|e| e.label() == label)
    }
}

impl std::fmt::Display for FaultEnvironment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The work budget of the simulation engine: one trial is a full discrete-event
/// run of the executable protocol, so trial counts are in the hundreds where the
/// analytic samplers draw hundreds of thousands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimBudget {
    /// Number of independent simulation trials (each with its own sampled fault
    /// schedule and simulator seed). A zero budget saturates to one trial.
    pub trials: usize,
    /// Virtual time each trial runs for, in milliseconds. Long enough by default
    /// for several election timeouts and view changes to play out.
    pub horizon_millis: u64,
    /// Prefix of the horizon (milliseconds) within which sampled fault events
    /// land. Faults arrive early — mirroring the analysis-window semantics, where
    /// a configuration's faults are in place when its guarantees are judged — and
    /// the rest of the horizon lets elections and view changes play out.
    pub fault_window_millis: u64,
    /// Client commands submitted at the start of each trial — the workload whose
    /// commitment defines empirical liveness.
    pub commands: usize,
    /// The adversarial environment trials run inside (gray primary, healing
    /// partition, lossy WAN — [`FaultEnvironment::Clean`] by default). Affects
    /// only the simulation side of a cell; the analytic engines have no notion of
    /// it.
    pub environment: FaultEnvironment,
}

impl SimBudget {
    /// Sets the fault environment.
    pub fn with_environment(mut self, environment: FaultEnvironment) -> Self {
        self.environment = environment;
        self
    }
}

impl Default for SimBudget {
    /// 160 trials × 2.5 virtual seconds × 3 commands: enough trials to resolve
    /// paper-scale probabilities to a few points of standard error, enough virtual
    /// time for re-elections after injected crashes, at a cost of well under a
    /// second of wall clock for a 5-node cluster.
    fn default() -> Self {
        Self {
            trials: 160,
            horizon_millis: 2_500,
            fault_window_millis: 200,
            commands: 3,
            environment: FaultEnvironment::Clean,
        }
    }
}

impl Default for Budget {
    /// Defaults tuned for interactive use: up to 2^20 exact configurations (≲ 20 binary
    /// nodes, ≲ 12 ternary nodes — the paper-scale clusters), exact counting up to
    /// 2,000 nodes (~N³ = 8e9 DP updates, single-digit seconds), and 200k samples,
    /// enough for a ±0.2-point 95% interval near the probabilities the paper reports.
    /// Rare-event defaults: adaptive proposal, an ESS floor of 64 effective samples,
    /// and a 1e-6 failure-probability threshold for preferring importance sampling.
    fn default() -> Self {
        Self {
            max_enumeration_configs: 1 << 20,
            max_counting_nodes: 2_000,
            monte_carlo_samples: 200_000,
            seed: 0x5EED_CAFE,
            rare_event_tilt: 0.0,
            min_effective_samples: 64.0,
            rare_event_threshold: 1e-6,
            mc_kernel: McKernel::Auto,
            mc_lane_words: crate::packed::DEFAULT_LANE_WORDS,
            sim: SimBudget::default(),
            epistemic: None,
        }
    }
}

impl Budget {
    /// A budget drawing `samples` Monte Carlo samples. A zero budget is accepted and
    /// saturates to one sample inside the sampling engines, so the resulting
    /// estimates are always well-defined (see [`crate::montecarlo`]).
    pub fn with_samples(mut self, samples: usize) -> Self {
        self.monte_carlo_samples = samples;
        self
    }

    /// A budget seeding Monte Carlo with `seed`.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A budget allowing up to `configs` exhaustively enumerated configurations.
    pub fn with_max_enumeration_configs(mut self, configs: u64) -> Self {
        self.max_enumeration_configs = configs;
        self
    }

    /// A budget allowing exact counting up to `nodes` nodes.
    pub fn with_max_counting_nodes(mut self, nodes: usize) -> Self {
        self.max_counting_nodes = nodes;
        self
    }

    /// A budget pinning the importance-sampling proposal to a uniform scalar `tilt`
    /// (≥ 1); `0.0` restores the default adaptive proposal.
    pub fn with_rare_event_tilt(mut self, tilt: f64) -> Self {
        assert!(
            tilt == 0.0 || tilt >= 1.0,
            "tilt must be 0 (adaptive) or >= 1, got {tilt}"
        );
        self.rare_event_tilt = tilt;
        self
    }

    /// A budget requiring at least `ess` effective samples from importance sampling.
    ///
    /// An `ess` of `0.0` (no floor, escalation disabled) is accepted here for the
    /// engine-layer entry points, but rejected by the stricter plan-time
    /// [`Budget::validate`] the query API runs — see
    /// [`InvalidBudget::MinEffectiveSamples`].
    pub fn with_min_effective_samples(mut self, ess: f64) -> Self {
        assert!(ess >= 0.0, "ESS floor must be non-negative, got {ess}");
        self.min_effective_samples = ess;
        self
    }

    /// A budget forcing the Monte Carlo engine onto one sampling kernel (`Auto`
    /// restores the default packed-when-counting selection).
    pub fn with_mc_kernel(mut self, kernel: McKernel) -> Self {
        self.mc_kernel = kernel;
        self
    }

    /// A budget pinning the packed kernel's pass width to `lane_words` 64-lane
    /// blocks (`1..=`[`MAX_LANE_WORDS`](crate::packed::MAX_LANE_WORDS)). Results
    /// are bit-identical at every width; only throughput changes.
    pub fn with_mc_lane_words(mut self, lane_words: usize) -> Self {
        assert!(
            (1..=crate::packed::MAX_LANE_WORDS).contains(&lane_words),
            "lane_words must be in 1..={}, got {lane_words}",
            crate::packed::MAX_LANE_WORDS
        );
        self.mc_lane_words = lane_words;
        self
    }

    /// A budget running `trials` discrete-event simulation trials when the
    /// simulation engine is invoked (a zero budget saturates to one trial).
    pub fn with_sim_trials(mut self, trials: usize) -> Self {
        self.sim.trials = trials;
        self
    }

    /// A budget whose simulation trials run inside the given adversarial fault
    /// environment (see [`FaultEnvironment`]). Only the simulation side of a cell
    /// changes; analytic results are environment-blind by construction.
    pub fn with_fault_environment(mut self, environment: FaultEnvironment) -> Self {
        self.sim.environment = environment;
        self
    }

    /// A budget with an explicit simulation work budget (trial count, virtual-time
    /// horizon and per-trial workload).
    ///
    /// # Panics
    ///
    /// Panics when the horizon is zero (a zero-length trial can observe nothing)
    /// or when the fault window extends past the horizon (faults scheduled after
    /// the end of a trial would silently never be applied).
    pub fn with_sim(mut self, sim: SimBudget) -> Self {
        assert!(
            sim.horizon_millis > 0,
            "simulation horizon must be positive"
        );
        assert!(
            sim.fault_window_millis <= sim.horizon_millis,
            "fault window ({}) must not exceed the horizon ({}): later faults would \
             silently never be applied",
            sim.fault_window_millis,
            sim.horizon_millis
        );
        self.sim = sim;
        self
    }

    /// A budget running `draws` posterior parameter draws per cell, drawn from
    /// a Beta(`alpha`, `beta`) posterior over the fault-probability scale, at
    /// the default credible level (see [`EpistemicBudget`]).
    ///
    /// Deliberately assert-free: malformed hyperparameters arriving over the
    /// wire must surface as a recoverable plan-time [`InvalidBudget`], never a
    /// panic. [`Budget::validate`] rejects `draws == 0`, non-finite or
    /// non-positive hyperparameters, and out-of-range levels.
    pub fn with_posterior(mut self, draws: usize, alpha: f64, beta: f64) -> Self {
        self.epistemic = Some(EpistemicBudget::new(draws, alpha, beta));
        self
    }

    /// A budget with an explicit epistemic (second-order) budget, including a
    /// non-default credible level. Validated at plan time like
    /// [`Budget::with_posterior`].
    pub fn with_epistemic(mut self, epistemic: EpistemicBudget) -> Self {
        self.epistemic = Some(epistemic);
        self
    }

    /// A budget routing failure probabilities below `threshold` to the
    /// importance-sampling engine (when no exact engine applies).
    ///
    /// The closed boundaries are engine-layer conveniences: `0.0` disables the
    /// rare-event engine outright (its `supports` can never fire) and `1.0` always
    /// prefers it. Both are accepted here — and by the direct
    /// [`select_engine`]/[`crate::analyzer::analyze_auto`] paths — but rejected by
    /// the plan-time [`Budget::validate`] the query API runs, which requires a
    /// threshold strictly inside `(0, 1)`; see [`InvalidBudget::RareEventThreshold`].
    pub fn with_rare_event_threshold(mut self, threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be a probability, got {threshold}"
        );
        self.rare_event_threshold = threshold;
        self
    }

    /// Checks the budget's sampling knobs, the plan-time guard of the query API
    /// ([`crate::query::AnalysisSession::plan`]).
    ///
    /// The builder methods assert their own argument ranges, but a `Budget` is a
    /// plain struct — nothing stops a caller from writing `rare_event_tilt: f64::NAN`
    /// directly, and the engines would previously accept it silently (a NaN tilt
    /// poisons every importance weight; a zero ESS floor disables the escalation
    /// diagnostic; a threshold outside `(0, 1)` either disables the rare-event
    /// engine entirely or routes *every* scenario to it). Planning a query rejects
    /// such budgets up front with
    /// [`AnalysisError::InvalidBudget`](crate::analyzer::AnalysisError):
    ///
    /// * `rare_event_tilt` must be finite and either `0` (adaptive) or `≥ 1`;
    /// * `min_effective_samples` must be a positive finite number (zero would turn
    ///   the ESS floor into a no-op);
    /// * `rare_event_threshold` must lie strictly inside `(0, 1)`;
    /// * `mc_lane_words` must be in `1..=`[`MAX_LANE_WORDS`](crate::packed::MAX_LANE_WORDS)
    ///   (zero would be a pass that samples nothing).
    pub fn validate(&self) -> Result<(), InvalidBudget> {
        let tilt = self.rare_event_tilt;
        if !tilt.is_finite() || !(tilt == 0.0 || tilt >= 1.0) {
            return Err(InvalidBudget::RareEventTilt(tilt));
        }
        let ess = self.min_effective_samples;
        if !ess.is_finite() || ess <= 0.0 {
            return Err(InvalidBudget::MinEffectiveSamples(ess));
        }
        let threshold = self.rare_event_threshold;
        if !(threshold > 0.0 && threshold < 1.0) {
            return Err(InvalidBudget::RareEventThreshold(threshold));
        }
        if self.sim.horizon_millis == 0 {
            return Err(InvalidBudget::SimHorizon);
        }
        if self.sim.fault_window_millis > self.sim.horizon_millis {
            return Err(InvalidBudget::SimFaultWindow {
                window_millis: self.sim.fault_window_millis,
                horizon_millis: self.sim.horizon_millis,
            });
        }
        if !(1..=crate::packed::MAX_LANE_WORDS).contains(&self.mc_lane_words) {
            return Err(InvalidBudget::McLaneWords(self.mc_lane_words));
        }
        if let Some(ep) = self.epistemic {
            if ep.draws == 0 {
                return Err(InvalidBudget::EpistemicDraws);
            }
            if !(ep.alpha.is_finite() && ep.alpha > 0.0 && ep.beta.is_finite() && ep.beta > 0.0) {
                return Err(InvalidBudget::EpistemicHyperparameters {
                    alpha: ep.alpha,
                    beta: ep.beta,
                });
            }
            if !(ep.level.is_finite() && ep.level > 0.0 && ep.level < 1.0) {
                return Err(InvalidBudget::EpistemicLevel(ep.level));
            }
        }
        Ok(())
    }
}

/// Which [`Budget`] knob failed [`Budget::validate`], carrying the offending value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InvalidBudget {
    /// `rare_event_tilt` is NaN, infinite, negative, or in `(0, 1)` — a tilt must be
    /// `0` (adaptive) or inflate fault probabilities (`≥ 1`).
    RareEventTilt(f64),
    /// `min_effective_samples` is NaN, infinite, zero or negative.
    MinEffectiveSamples(f64),
    /// `rare_event_threshold` is outside the open interval `(0, 1)` (NaN included).
    RareEventThreshold(f64),
    /// The simulation budget's virtual-time horizon is zero — a zero-length trial
    /// delivers no messages and fires no timers, so its verdicts are vacuous.
    SimHorizon,
    /// `mc_lane_words` is outside `1..=`[`MAX_LANE_WORDS`](crate::packed::MAX_LANE_WORDS):
    /// zero-width passes sample nothing, and the packed kernel's stack scratch is
    /// sized by the maximum.
    McLaneWords(usize),
    /// The simulation budget's fault window extends past its horizon: faults
    /// scheduled beyond the end of a trial are silently never applied, which
    /// would bias every empirical rate (and cross-validation z-score) upward.
    SimFaultWindow {
        /// The configured fault window, in milliseconds.
        window_millis: u64,
        /// The configured horizon it exceeds, in milliseconds.
        horizon_millis: u64,
    },
    /// The epistemic budget asks for zero posterior draws — a second-order
    /// analysis with no draws has no posterior to summarize.
    EpistemicDraws,
    /// A Beta hyperparameter of the epistemic budget is NaN, infinite, zero or
    /// negative: Beta(alpha, beta) requires both to be finite and positive.
    EpistemicHyperparameters {
        /// The configured `alpha` hyperparameter.
        alpha: f64,
        /// The configured `beta` hyperparameter.
        beta: f64,
    },
    /// The epistemic credible level is outside the open interval `(0, 1)`
    /// (NaN included) — no central interval exists at such a level.
    EpistemicLevel(f64),
}

impl std::fmt::Display for InvalidBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvalidBudget::RareEventTilt(v) => write!(
                f,
                "rare_event_tilt must be 0 (adaptive) or a finite value >= 1, got {v}"
            ),
            InvalidBudget::MinEffectiveSamples(v) => write!(
                f,
                "min_effective_samples must be a positive finite number, got {v}"
            ),
            InvalidBudget::RareEventThreshold(v) => write!(
                f,
                "rare_event_threshold must lie strictly inside (0, 1), got {v}"
            ),
            InvalidBudget::SimHorizon => {
                write!(f, "sim.horizon_millis must be positive")
            }
            InvalidBudget::McLaneWords(v) => write!(
                f,
                "mc_lane_words must be in 1..={}, got {v}",
                crate::packed::MAX_LANE_WORDS
            ),
            InvalidBudget::SimFaultWindow {
                window_millis,
                horizon_millis,
            } => write!(
                f,
                "sim.fault_window_millis ({window_millis}) must not exceed \
                 sim.horizon_millis ({horizon_millis}): later faults would silently \
                 never be applied"
            ),
            InvalidBudget::EpistemicDraws => {
                write!(f, "epistemic.draws must be positive (got 0)")
            }
            InvalidBudget::EpistemicHyperparameters { alpha, beta } => write!(
                f,
                "epistemic hyperparameters must be finite and positive, \
                 got alpha={alpha} beta={beta}"
            ),
            InvalidBudget::EpistemicLevel(v) => write!(
                f,
                "epistemic.level must lie strictly inside (0, 1), got {v}"
            ),
        }
    }
}

impl std::error::Error for InvalidBudget {}

/// The result of a unified analysis: the report in "nines", plus which engine produced
/// it and — when sampling did — the full Monte Carlo estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalysisOutcome {
    /// The probabilistic safety/liveness guarantees.
    pub report: ReliabilityReport,
    /// The engine that produced the report.
    pub engine: EngineChoice,
    /// The sampling estimate with confidence intervals, when `engine` is Monte Carlo.
    pub monte_carlo: Option<MonteCarloReport>,
    /// The weighted estimate with confidence intervals and the effective-sample-size
    /// diagnostic, when `engine` is importance sampling.
    pub rare_event: Option<RareEventReport>,
    /// The empirical trial frequencies and trace-derived statistics, when `engine`
    /// is the discrete-event simulation engine.
    pub simulation: Option<SimulationReport>,
}

impl AnalysisOutcome {
    /// Whether the report is exact (enumeration or counting) rather than an estimate.
    pub fn is_exact(&self) -> bool {
        matches!(
            self.engine,
            EngineChoice::Enumeration | EngineChoice::Counting
        )
    }

    /// Whether the report was measured on the executable system (simulation) rather
    /// than computed from the protocol model.
    pub fn is_empirical(&self) -> bool {
        self.engine == EngineChoice::Simulation
    }
}

impl std::fmt::Display for AnalysisOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}]", self.report, self.engine)
    }
}

/// One reliability-analysis strategy.
///
/// Implementations must answer, for any model/scenario/budget triple, whether they
/// apply ([`supports`](AnalysisEngine::supports)) and produce an [`AnalysisOutcome`]
/// when they do ([`run`](AnalysisEngine::run)). The trait is object-safe; the
/// auto-selector walks [`ENGINES`] in preference order.
pub trait AnalysisEngine: Sync {
    /// Which engine this is.
    fn choice(&self) -> EngineChoice;

    /// Short name for reports and logs.
    fn name(&self) -> &'static str;

    /// Whether this engine can analyze `model` on `scenario` within `budget`.
    fn supports(&self, model: &dyn ProtocolModel, scenario: Scenario<'_>, budget: &Budget) -> bool;

    /// Runs the analysis.
    ///
    /// # Panics
    ///
    /// May panic if called for an unsupported triple; callers should check
    /// [`supports`](AnalysisEngine::supports) (or use
    /// [`crate::analyzer::analyze_auto`], which does).
    fn run(
        &self,
        model: &dyn ProtocolModel,
        scenario: Scenario<'_>,
        budget: &Budget,
    ) -> AnalysisOutcome;
}

/// Exhaustive enumeration: exact for *any* protocol model, exponential in N.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnumerationEngine;

impl AnalysisEngine for EnumerationEngine {
    fn choice(&self) -> EngineChoice {
        EngineChoice::Enumeration
    }

    fn name(&self) -> &'static str {
        "enumeration"
    }

    fn supports(
        &self,
        _model: &dyn ProtocolModel,
        scenario: Scenario<'_>,
        budget: &Budget,
    ) -> bool {
        // Admissibility is the enumeration module's own rule, so the selector can
        // never route a deployment there that the module would reject.
        scenario.is_independent()
            && crate::enumeration::enumeration_supported(scenario.profiles())
            && crate::enumeration::enumeration_config_count(scenario.profiles())
                <= budget.max_enumeration_configs
    }

    fn run(
        &self,
        model: &dyn ProtocolModel,
        scenario: Scenario<'_>,
        _budget: &Budget,
    ) -> AnalysisOutcome {
        let report = if let Scenario::Independent(deployment) = scenario {
            enumerate_reliability(model, deployment)
        } else {
            let deployment = scenario
                .as_independent()
                .expect("enumeration requires an independent scenario");
            enumerate_reliability(model, &deployment)
        };
        AnalysisOutcome {
            report: ReliabilityReport::from_raw(report),
            engine: EngineChoice::Enumeration,
            monte_carlo: None,
            rare_event: None,
            simulation: None,
        }
    }
}

/// Exact dynamic programming over fault counts: independent scenarios and counting
/// models only, polynomial in N.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingEngine;

impl AnalysisEngine for CountingEngine {
    fn choice(&self) -> EngineChoice {
        EngineChoice::Counting
    }

    fn name(&self) -> &'static str {
        "counting"
    }

    fn supports(&self, model: &dyn ProtocolModel, scenario: Scenario<'_>, budget: &Budget) -> bool {
        model.as_counting().is_some()
            && scenario.is_independent()
            && scenario.len() <= budget.max_counting_nodes
    }

    fn run(
        &self,
        model: &dyn ProtocolModel,
        scenario: Scenario<'_>,
        _budget: &Budget,
    ) -> AnalysisOutcome {
        let counting = model
            .as_counting()
            .expect("counting engine requires a counting model");
        let report = if let Scenario::Independent(deployment) = scenario {
            counting_reliability(counting, deployment)
        } else {
            let deployment = scenario
                .as_independent()
                .expect("counting requires an independent scenario");
            counting_reliability(counting, &deployment)
        };
        AnalysisOutcome {
            report: ReliabilityReport::from_raw(report),
            engine: EngineChoice::Counting,
            monte_carlo: None,
            rare_event: None,
            simulation: None,
        }
    }
}

/// Parallel Monte Carlo sampling: applies to every model and scenario; the only engine
/// for correlated failures.
#[derive(Debug, Clone, Copy, Default)]
pub struct MonteCarloEngine;

impl AnalysisEngine for MonteCarloEngine {
    fn choice(&self) -> EngineChoice {
        EngineChoice::MonteCarlo
    }

    fn name(&self) -> &'static str {
        "monte-carlo"
    }

    fn supports(
        &self,
        _model: &dyn ProtocolModel,
        _scenario: Scenario<'_>,
        _budget: &Budget,
    ) -> bool {
        true
    }

    fn run(
        &self,
        model: &dyn ProtocolModel,
        scenario: Scenario<'_>,
        budget: &Budget,
    ) -> AnalysisOutcome {
        let owned;
        let failure_model = match scenario {
            Scenario::Correlated(c) => c,
            Scenario::Independent(_) => {
                owned = scenario.to_correlation_model();
                &owned
            }
        };
        let mc = monte_carlo_reliability_par_kernel_lanes(
            model,
            failure_model,
            budget.monte_carlo_samples,
            budget.seed,
            budget.mc_kernel,
            budget.mc_lane_words,
        );
        AnalysisOutcome {
            report: ReliabilityReport::from_raw(crate::enumeration::RawReliability {
                p_safe: mc.safe.value,
                p_live: mc.live.value,
                p_safe_and_live: mc.safe_and_live.value,
            }),
            engine: EngineChoice::MonteCarlo,
            monte_carlo: Some(mc),
            rare_event: None,
            simulation: None,
        }
    }
}

/// The engine registry, in auto-selection preference order: exact counting first,
/// exhaustive enumeration for small non-counting models, importance sampling for
/// failure events too rare for plain sampling, Monte Carlo as the universal fallback.
///
/// The fifth engine ([`SimulationEngine`]) is deliberately absent: it measures the
/// executable system instead of evaluating the model (milliseconds per trial vs.
/// nanoseconds per sample), so it never competes with the analytic engines and runs
/// only when explicitly requested.
pub static ENGINES: [&dyn AnalysisEngine; 4] = [
    &CountingEngine,
    &EnumerationEngine,
    &ImportanceSamplingEngine,
    &MonteCarloEngine,
];

/// Picks the engine [`crate::analyzer::analyze_auto`] will run for this triple.
///
/// # Panics
///
/// Panics on an empty scenario; the fallible front door is
/// [`crate::analyzer::analyze_scenario`].
pub fn select_engine(
    model: &dyn ProtocolModel,
    scenario: Scenario<'_>,
    budget: &Budget,
) -> EngineChoice {
    assert!(
        !scenario.is_empty(),
        "cannot analyze an empty scenario (zero nodes); see analyzer::AnalysisError"
    );
    ENGINES
        .iter()
        .find(|engine| engine.supports(model, scenario, budget))
        .expect("Monte Carlo supports every scenario")
        .choice()
}

/// Runs the selected engine for this triple.
///
/// # Panics
///
/// Panics on an empty scenario; the fallible front door is
/// [`crate::analyzer::analyze_scenario`].
pub fn run_selected(
    model: &dyn ProtocolModel,
    scenario: Scenario<'_>,
    budget: &Budget,
) -> AnalysisOutcome {
    assert!(
        !scenario.is_empty(),
        "cannot analyze an empty scenario (zero nodes); see analyzer::AnalysisError"
    );
    ENGINES
        .iter()
        .find(|engine| engine.supports(model, scenario, budget))
        .expect("Monte Carlo supports every scenario")
        .run(model, scenario, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pbft_model::PbftModel;
    use crate::raft_model::RaftModel;
    use fault_model::correlation::CorrelationGroup;
    use fault_model::mode::FaultProfile;

    /// A deliberately non-counting model: live only if node 0 is correct. Placement
    /// requirements like this are exactly what forces enumeration.
    struct RequiresNodeZero {
        n: usize,
    }

    impl ProtocolModel for RequiresNodeZero {
        fn name(&self) -> String {
            "RequiresNodeZero".into()
        }

        fn num_nodes(&self) -> usize {
            self.n
        }

        fn is_safe(&self, _config: &crate::failure::FailureConfig) -> bool {
            true
        }

        fn is_live(&self, config: &crate::failure::FailureConfig) -> bool {
            config.state(0).is_correct()
        }
    }

    #[test]
    fn counting_model_on_independent_deployment_selects_counting() {
        let model = RaftModel::standard(5);
        let deployment = Deployment::uniform_crash(5, 0.05);
        let choice = select_engine(&model, Scenario::from(&deployment), &Budget::default());
        assert_eq!(choice, EngineChoice::Counting);
    }

    #[test]
    fn non_counting_model_small_n_selects_enumeration() {
        let model = RequiresNodeZero { n: 5 };
        let deployment = Deployment::uniform_crash(5, 0.05);
        let choice = select_engine(&model, Scenario::from(&deployment), &Budget::default());
        assert_eq!(choice, EngineChoice::Enumeration);
    }

    #[test]
    fn non_counting_model_large_n_selects_monte_carlo() {
        let model = RequiresNodeZero { n: 64 };
        let deployment = Deployment::uniform_crash(64, 0.05);
        let choice = select_engine(&model, Scenario::from(&deployment), &Budget::default());
        assert_eq!(choice, EngineChoice::MonteCarlo);
    }

    #[test]
    fn correlated_scenario_always_selects_monte_carlo() {
        let model = RaftModel::standard(5);
        let correlated = CorrelationModel::independent(vec![FaultProfile::crash_only(0.02); 5])
            .with_group(CorrelationGroup::crash_shock((0..5).collect(), 0.01));
        let choice = select_engine(&model, Scenario::from(&correlated), &Budget::default());
        assert_eq!(choice, EngineChoice::MonteCarlo);
    }

    #[test]
    fn groupless_correlation_model_counts_as_independent() {
        let model = RaftModel::standard(5);
        let independent = CorrelationModel::independent(vec![FaultProfile::crash_only(0.02); 5]);
        let scenario = Scenario::from(&independent);
        assert!(!scenario.is_correlated());
        assert_eq!(
            select_engine(&model, scenario, &Budget::default()),
            EngineChoice::Counting
        );
    }

    #[test]
    fn oversized_budget_still_respects_enumeration_hard_caps() {
        // A budget large enough to "afford" 2^25 configurations must not route a
        // 25-node deployment to enumeration — the module itself caps binary
        // enumeration at 24 nodes, so the selector has to fall back to sampling.
        let model = RequiresNodeZero { n: 25 };
        let deployment = Deployment::uniform_crash(25, 0.05);
        let roomy = Budget::default().with_max_enumeration_configs(1 << 26);
        assert_eq!(
            select_engine(&model, Scenario::from(&deployment), &roomy),
            EngineChoice::MonteCarlo
        );
        // The ternary cap is tighter (15 nodes): 16 mixed-mode nodes must fall back
        // even under an unbounded budget.
        let mixed = Deployment::uniform_mixed(16, 0.05, 0.01);
        let model16 = RequiresNodeZero { n: 16 };
        let huge = Budget::default().with_max_enumeration_configs(u64::MAX);
        assert_eq!(
            select_engine(&model16, Scenario::from(&mixed), &huge),
            EngineChoice::MonteCarlo
        );
    }

    #[test]
    fn counting_respects_its_node_budget() {
        // Selection only — running the DP at this size is exactly what the cap avoids.
        // Past the counting cap this deployment falls through to sampling, and since
        // losing a 1,501-node majority at p_u = 1% is an astronomically rare event,
        // the rare-event engine (not plain Monte Carlo) picks it up.
        let model = RaftModel::standard(3_000);
        let deployment = Deployment::uniform_crash(3_000, 0.01);
        let scenario = Scenario::from(&deployment);
        assert_eq!(
            select_engine(&model, scenario, &Budget::default()),
            EngineChoice::ImportanceSampling
        );
        assert_eq!(
            select_engine(
                &model,
                scenario,
                &Budget::default().with_max_counting_nodes(5_000)
            ),
            EngineChoice::Counting
        );
    }

    #[test]
    fn budget_shrinks_enumeration_reach() {
        let model = RequiresNodeZero { n: 10 };
        let deployment = Deployment::uniform_crash(10, 0.05);
        let tight = Budget::default().with_max_enumeration_configs(512);
        assert_eq!(
            select_engine(&model, Scenario::from(&deployment), &tight),
            EngineChoice::MonteCarlo
        );
        let roomy = Budget::default().with_max_enumeration_configs(1 << 10);
        assert_eq!(
            select_engine(&model, Scenario::from(&deployment), &roomy),
            EngineChoice::Enumeration
        );
    }

    #[test]
    fn ternary_deployments_cost_three_modes_per_node() {
        let deployment = Deployment::uniform_mixed(8, 0.05, 0.001);
        let scenario = Scenario::from(&deployment);
        assert_eq!(
            crate::enumeration::enumeration_config_count(scenario.profiles()),
            3u64.pow(8)
        );
    }

    #[test]
    fn counting_and_enumeration_engines_agree_via_trait() {
        let model = PbftModel::standard(5);
        let deployment = Deployment::uniform_byzantine(5, 0.03);
        let scenario = Scenario::from(&deployment);
        let budget = Budget::default();
        let exact = EnumerationEngine.run(&model, scenario, &budget);
        let counted = CountingEngine.run(&model, scenario, &budget);
        assert!(exact.is_exact() && counted.is_exact());
        assert!(
            (exact.report.safe.probability() - counted.report.safe.probability()).abs() < 1e-12
        );
        assert!(
            (exact.report.live.probability() - counted.report.live.probability()).abs() < 1e-12
        );
    }

    #[test]
    fn monte_carlo_engine_reports_estimate() {
        let model = RaftModel::standard(5);
        let deployment = Deployment::uniform_crash(5, 0.05);
        let outcome = MonteCarloEngine.run(
            &model,
            Scenario::from(&deployment),
            &Budget::default().with_samples(50_000).with_seed(7),
        );
        assert_eq!(outcome.engine, EngineChoice::MonteCarlo);
        assert!(!outcome.is_exact());
        let mc = outcome
            .monte_carlo
            .expect("sampling outcome carries its CI");
        assert_eq!(mc.samples, 50_000);
        let exact = CountingEngine.run(&model, Scenario::from(&deployment), &Budget::default());
        assert!(mc.live.contains(exact.report.live.probability()));
    }

    #[test]
    fn rare_failure_event_on_non_counting_model_selects_importance_sampling() {
        // Liveness loss requires all of nodes 0..6 faulty: p = 0.05^6 ≈ 1.6e-8, far
        // below the pilot's resolution and the 1e-6 threshold. No exact engine takes
        // a 40-node placement-sensitive model, so the rare-event engine must.
        let model = crate::durability::PersistenceQuorumModel::new(40, (0..6).collect());
        let deployment = Deployment::uniform_crash(40, 0.05);
        let choice = select_engine(&model, Scenario::from(&deployment), &Budget::default());
        assert_eq!(choice, EngineChoice::ImportanceSampling);
        // A threshold of 1 accepts any proxy value, so the preference still holds;
        // a zero threshold can never be undercut, so Monte Carlo takes over.
        let permissive = Budget::default().with_rare_event_threshold(1.0);
        let disabled = Budget::default().with_rare_event_threshold(0.0);
        assert_eq!(
            select_engine(&model, Scenario::from(&deployment), &permissive),
            EngineChoice::ImportanceSampling
        );
        assert_eq!(
            select_engine(&model, Scenario::from(&deployment), &disabled),
            EngineChoice::MonteCarlo
        );
    }

    #[test]
    fn importance_sampling_outcome_carries_weighted_estimate() {
        // 24 binary nodes put 2^24 configurations past the enumeration budget, so
        // the selector has to sample — and P[loss] ≈ 6.3e-6 is pilot-invisible.
        let model = crate::durability::PersistenceQuorumModel::new(24, (0..4).collect());
        let deployment = Deployment::uniform_crash(24, 0.05);
        let budget = Budget::default().with_samples(30_000).with_seed(13);
        let outcome = run_selected(&model, Scenario::from(&deployment), &budget);
        assert_eq!(outcome.engine, EngineChoice::ImportanceSampling);
        assert!(!outcome.is_exact());
        assert!(outcome.monte_carlo.is_none());
        let report = outcome.rare_event.expect("weighted estimate attached");
        let truth = 1.0 - 0.05f64.powi(4);
        assert!(
            report.safe.contains(truth),
            "exact {truth} outside [{}, {}]",
            report.safe.lower,
            report.safe.upper
        );
        assert!(report.ess > 0.0);
    }

    #[test]
    fn zero_sample_budget_yields_well_defined_outcome() {
        // Regression: a zero sample budget used to be rejected up front (and a raw
        // zero in `monte_carlo_samples` divided by n = 0 downstream); it now
        // saturates to one sample with finite, in-range bounds.
        let model = RequiresNodeZero { n: 64 };
        let deployment = Deployment::uniform_crash(64, 0.05);
        let budget = Budget::default().with_samples(0);
        let outcome = run_selected(&model, Scenario::from(&deployment), &budget);
        assert_eq!(outcome.engine, EngineChoice::MonteCarlo);
        let mc = outcome
            .monte_carlo
            .expect("sampling outcome carries its CI");
        assert_eq!(mc.samples, 1);
        for e in [mc.safe, mc.live, mc.safe_and_live] {
            assert!(e.value.is_finite() && e.lower.is_finite() && e.upper.is_finite());
            assert!(0.0 <= e.lower && e.lower <= e.value && e.value <= e.upper && e.upper <= 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "empty scenario")]
    fn empty_scenario_panics_with_a_clear_message_at_the_engine_layer() {
        let model = RequiresNodeZero { n: 0 };
        let empty = CorrelationModel::independent(Vec::new());
        select_engine(&model, Scenario::from(&empty), &Budget::default());
    }

    #[test]
    fn engine_choice_displays_kebab_names() {
        assert_eq!(EngineChoice::Counting.to_string(), "counting");
        assert_eq!(EngineChoice::MonteCarlo.to_string(), "monte-carlo");
        assert_eq!(
            EngineChoice::ImportanceSampling.to_string(),
            "importance-sampling"
        );
        let outcome = CountingEngine.run(
            &RaftModel::standard(3),
            Scenario::from(&Deployment::uniform_crash(3, 0.01)),
            &Budget::default(),
        );
        assert!(outcome.to_string().ends_with("[counting]"));
    }
}
