//! End-to-end guarantees (§4).
//!
//! "Applications care about end-to-end reliability guarantees, where consensus is a small
//! part of the system... A live consensus protocol might not be able to meet the
//! availability requirements if its recovery or reconfiguration is intolerably slow.
//! Outside of availability, an unsafe system may commit different operations at different
//! nodes yet remain durable if both forks are preserved." This module translates the
//! protocol-level probabilistic guarantees into application-level availability and
//! durability figures.

use fault_model::metrics::{Nines, HOURS_PER_YEAR};

use crate::analyzer::ReliabilityReport;

/// Recovery characteristics of the deployment surrounding the consensus protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryModel {
    /// Mean time to detect the loss of liveness and repair/reconfigure, in hours.
    pub mttr_hours: f64,
    /// Length of the mission window over which the protocol-level probabilities were
    /// computed, in hours.
    pub window_hours: f64,
    /// Whether divergent forks are preserved (journaled) when safety is violated, so that
    /// a safety violation degrades to an ordering incident rather than data loss.
    pub forks_preserved: bool,
}

impl RecoveryModel {
    /// A reasonable default: one-year analysis window, four-hour recovery, forks
    /// preserved.
    pub fn default_annual() -> Self {
        Self {
            mttr_hours: 4.0,
            window_hours: HOURS_PER_YEAR,
            forks_preserved: true,
        }
    }
}

/// Application-visible guarantees derived from the protocol-level report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EndToEndReport {
    /// Expected fraction of time the service can commit operations (availability).
    pub availability: Nines,
    /// Probability that committed data survives the window (durability).
    pub durability: Nines,
    /// Expected downtime per window, in hours.
    pub expected_downtime_hours: f64,
}

/// Derives end-to-end availability and durability from a protocol-level report.
///
/// * Availability: losing liveness costs one MTTR of downtime per window (bounded by the
///   window itself), so availability ≈ 1 − P[not live] · MTTR / window.
/// * Durability: a safety violation only loses data when forks are not preserved; with
///   fork preservation durability is bounded by the probability that data written to a
///   persistence quorum survives, which the caller supplies via `quorum_durability`
///   (e.g. from [`crate::durability::quorum_durability`]).
pub fn end_to_end(
    protocol: &ReliabilityReport,
    recovery: &RecoveryModel,
    quorum_durability: Nines,
) -> EndToEndReport {
    assert!(recovery.mttr_hours >= 0.0 && recovery.window_hours > 0.0);
    let p_unlive = protocol.unliveness();
    let downtime = (p_unlive * recovery.mttr_hours).min(recovery.window_hours);
    let availability = 1.0 - downtime / recovery.window_hours;
    let durability = if recovery.forks_preserved {
        quorum_durability.probability()
    } else {
        // Without fork preservation a safety violation may lose one of the forks.
        quorum_durability.probability() * protocol.safe.probability()
    };
    EndToEndReport {
        availability: Nines::from_probability(availability.clamp(0.0, 1.0)),
        durability: Nines::from_probability(durability.clamp(0.0, 1.0)),
        expected_downtime_hours: downtime,
    }
}

/// The availability target (in nines) reachable for a given protocol-level liveness and
/// recovery time — useful for answering "how fast must reconfiguration be to deliver
/// four nines end to end?".
pub fn required_mttr_for_availability(
    protocol: &ReliabilityReport,
    window_hours: f64,
    target_availability_nines: f64,
) -> Option<f64> {
    assert!(window_hours > 0.0);
    let p_unlive = protocol.unliveness();
    if p_unlive == 0.0 {
        return Some(f64::INFINITY);
    }
    let max_downtime = window_hours
        * (1.0 - fault_model::metrics::probability_from_nines(target_availability_nines));
    let mttr = max_downtime / p_unlive;
    if mttr <= 0.0 {
        None
    } else {
        Some(mttr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;
    use crate::deployment::Deployment;
    use crate::durability::quorum_durability;
    use crate::raft_model::RaftModel;

    fn raft3() -> ReliabilityReport {
        analyze(&RaftModel::standard(3), &Deployment::uniform_crash(3, 0.01))
    }

    #[test]
    fn availability_exceeds_protocol_liveness_with_fast_recovery() {
        let protocol = raft3();
        let deployment = Deployment::uniform_crash(3, 0.01);
        let dur = quorum_durability(&deployment, &[0, 1]);
        let e2e = end_to_end(&protocol, &RecoveryModel::default_annual(), dur);
        // Liveness is ~3.5 nines, but a 4h MTTR out of a year turns that into far more
        // nines of availability.
        assert!(e2e.availability.nines() > protocol.live.nines() + 2.0);
        assert!(e2e.expected_downtime_hours < 0.01);
        // Data on a 2-node persistence quorum at p=1% survives with probability 1 - 1e-4.
        assert!(e2e.durability.probability() >= 0.9999 - 1e-12);
    }

    #[test]
    fn slow_recovery_erodes_availability() {
        let protocol = raft3();
        let deployment = Deployment::uniform_crash(3, 0.01);
        let dur = quorum_durability(&deployment, &[0, 1]);
        let slow = RecoveryModel {
            mttr_hours: 2_000.0,
            window_hours: HOURS_PER_YEAR,
            forks_preserved: true,
        };
        let fast = end_to_end(&protocol, &RecoveryModel::default_annual(), dur);
        let eroded = end_to_end(&protocol, &slow, dur);
        assert!(eroded.availability.probability() < fast.availability.probability());
    }

    #[test]
    fn fork_preservation_decouples_durability_from_safety() {
        // A deliberately unsafe configuration: Raft with non-intersecting quorums.
        let model = RaftModel::flexible(5, 2, 2);
        let deployment = Deployment::uniform_crash(5, 0.01);
        let protocol = analyze(&model, &deployment);
        assert!(protocol.safe.probability() < 0.5);
        let dur = quorum_durability(&deployment, &[0, 1]);
        let preserved = end_to_end(&protocol, &RecoveryModel::default_annual(), dur);
        let unpreserved = end_to_end(
            &protocol,
            &RecoveryModel {
                forks_preserved: false,
                ..RecoveryModel::default_annual()
            },
            dur,
        );
        assert!(preserved.durability.probability() > unpreserved.durability.probability());
    }

    #[test]
    fn required_mttr_shrinks_with_stricter_targets() {
        let protocol = raft3();
        let four = required_mttr_for_availability(&protocol, HOURS_PER_YEAR, 4.0).unwrap();
        let six = required_mttr_for_availability(&protocol, HOURS_PER_YEAR, 6.0).unwrap();
        assert!(six < four);
        assert!(four > 1.0, "four nines should be comfortably reachable");
    }

    #[test]
    fn perfectly_live_protocols_allow_any_mttr() {
        let protocol = analyze(&RaftModel::standard(3), &Deployment::uniform_crash(3, 0.0));
        let mttr = required_mttr_for_availability(&protocol, HOURS_PER_YEAR, 5.0).unwrap();
        assert!(mttr.is_infinite());
    }
}
