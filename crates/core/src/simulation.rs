//! The discrete-event simulation engine: empirical validation of the analytic
//! guarantees (§3's method, closed into a loop).
//!
//! The four analytic engines compute what the protocol *model* implies; this fifth
//! engine measures what the executable *system* does. [`SimulationEngine`] fans out
//! deterministic [`consensus_sim::Simulation`] traces — one independent cluster per
//! trial, built from the model's [`crate::protocol::ExecutableSpec`]
//! — under fault schedules sampled from the scenario's correlation model
//! ([`FaultSchedule::sample_from_correlation`]), and reports the empirical
//! safety/liveness frequencies with Wilson confidence intervals plus trace-derived
//! statistics (messages delivered, leader elections, decided commands, injected
//! faults).
//!
//! # Parallelism and determinism
//!
//! Trials are embarrassingly parallel and fan out across the persistent rayon pool.
//! Determinism follows the same construction as [`crate::montecarlo`]: trial `i`'s
//! RNG is seeded from `(budget seed, i)` by the same SplitMix64 finalizer that seeds
//! Monte Carlo chunks (salted, so the two samplers draw decorrelated streams), the
//! per-trial simulator seed is drawn from that RNG, and the per-trial verdicts are
//! integer tallies whose sum is order-independent. A fixed seed therefore yields a
//! bit-identical [`SimulationReport`] at any thread count, asserted by
//! `tests/engine_agreement.rs`.
//!
//! # Selection
//!
//! The engine implements [`AnalysisEngine`] but is **never auto-selected**: a
//! simulation trial costs milliseconds where an analytic sample costs nanoseconds,
//! and its verdict is an empirical measurement, not a model evaluation. It runs when
//! pinned explicitly, or — the intended front door — when a query requests paired
//! cross-validation ([`crate::query::Query::validate_with_simulation`]), which
//! reports per-cell analytic-vs-empirical agreement as z-scores.
//!
//! # Example
//!
//! ```
//! use prob_consensus::deployment::Deployment;
//! use prob_consensus::engine::{AnalysisEngine, Budget, EngineChoice, Scenario};
//! use prob_consensus::raft_model::RaftModel;
//! use prob_consensus::simulation::SimulationEngine;
//!
//! let model = RaftModel::standard(3);
//! let deployment = Deployment::uniform_crash(3, 0.2);
//! let budget = Budget::default().with_seed(7).with_sim_trials(12);
//! assert!(SimulationEngine.supports(&model, Scenario::Independent(&deployment), &budget));
//! let outcome = SimulationEngine.run(&model, Scenario::Independent(&deployment), &budget);
//! assert_eq!(outcome.engine, EngineChoice::Simulation);
//! let report = outcome.simulation.expect("simulation outcomes carry trial stats");
//! assert_eq!(report.trials, 12);
//! // Crash faults can stall progress but never break Raft's agreement.
//! assert_eq!(report.safe.value, 1.0);
//! assert!(report.mean_messages_delivered > 0.0);
//! ```

use consensus_protocols::harness::{run_trial, TrialProtocol, TrialSpec};
use consensus_protocols::pbft::PbftConfig;
use consensus_protocols::raft::RaftConfig;
use consensus_sim::fault::FaultSchedule;
use consensus_sim::network::{LinkQuality, NetworkConfig};
use consensus_sim::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::analyzer::ReliabilityReport;
use crate::engine::{
    AnalysisEngine, AnalysisOutcome, Budget, EngineChoice, FaultEnvironment, Scenario, SimBudget,
};
use crate::enumeration::RawReliability;
use crate::montecarlo::Estimate;
use crate::protocol::{ExecutableSpec, ProtocolModel};

/// Salt XOR-ed into the budget seed before deriving per-trial RNGs, so the
/// simulation engine and the Monte Carlo samplers draw decorrelated streams from
/// the same budget seed.
const SIM_SEED_SALT: u64 = 0x51D0_7EAC_E5EE_D001;

/// Stretch factor applied to the pinned leader under
/// [`FaultEnvironment::GrayPrimary`]: large enough that a sub-millisecond LAN
/// hop stretches past any multi-second horizon, so the gray node — provably
/// alive, never marked faulty — cannot catch up on replicated entries within
/// the mission window. ×1,000 is not enough: a 100 µs hop stretched to 100 ms
/// still commits inside a 2 s horizon, which is precisely the insidious
/// "slow but technically working" regime; ×100,000 pins the divergence.
pub const GRAY_SLOW_FACTOR: f64 = 100_000.0;

/// Drop probability of the asymmetric link override injected by
/// [`FaultEnvironment::WanLossy`] (one direction of the 0→1 link; the reverse
/// direction stays at the base WAN loss).
const WAN_LOSSY_LINK_DROP: f64 = 0.25;

/// Empirical reliability measured over a batch of discrete-event simulation trials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationReport {
    /// Fraction of trials whose correct nodes stayed in agreement, with a 95%
    /// Wilson interval.
    pub safe: Estimate,
    /// Fraction of trials in which every submitted command committed at every
    /// correct node.
    pub live: Estimate,
    /// Fraction of trials that were both safe and live.
    pub safe_and_live: Estimate,
    /// Number of trials run.
    pub trials: usize,
    /// Mean messages delivered per trial (a cost proxy).
    pub mean_messages_delivered: f64,
    /// Mean leader elections per trial beyond the initial one (Raft: term
    /// displacements; PBFT: view changes).
    pub mean_leader_changes: f64,
    /// Mean commands decided at every correct node per trial.
    pub mean_decided_commands: f64,
    /// Total fault events (crashes and Byzantine turns) injected across all trials.
    pub total_faults_injected: u64,
    /// Total gray-failure events (slow-downs and speed-ups) applied across all
    /// trials. Always zero under [`FaultEnvironment::Clean`].
    pub total_gray_events: u64,
    /// Total scheduled network events (partitions, heals, link overrides) applied
    /// across all trials. Always zero under [`FaultEnvironment::Clean`].
    pub total_net_events: u64,
}

/// Integer per-trial tallies; their sum is associative and commutative, which is
/// what makes the parallel reduction thread-count-independent.
#[derive(Debug, Clone, Copy, Default)]
struct TrialTally {
    safe: usize,
    live: usize,
    both: usize,
    messages_delivered: u64,
    leader_changes: u64,
    decided_commands: u64,
    faults_injected: u64,
    gray_events: u64,
    net_events: u64,
}

impl std::ops::Add for TrialTally {
    type Output = TrialTally;

    fn add(self, other: TrialTally) -> TrialTally {
        TrialTally {
            safe: self.safe + other.safe,
            live: self.live + other.live,
            both: self.both + other.both,
            messages_delivered: self.messages_delivered + other.messages_delivered,
            leader_changes: self.leader_changes + other.leader_changes,
            decided_commands: self.decided_commands + other.decided_commands,
            faults_injected: self.faults_injected + other.faults_injected,
            gray_events: self.gray_events + other.gray_events,
            net_events: self.net_events + other.net_events,
        }
    }
}

/// Builds the per-trial workload for an executable configuration under a budget,
/// specialized to the budget's fault environment: the network model it implies,
/// and — for environments that target "the primary" — a pinned leader so the
/// targeted node is the one that actually leads.
fn trial_spec(spec: ExecutableSpec, sim: &SimBudget) -> TrialSpec {
    let protocol = match spec {
        ExecutableSpec::Raft {
            n,
            commit_quorum,
            election_quorum,
        } => TrialProtocol::Raft(
            RaftConfig::standard(n).with_quorums(commit_quorum, election_quorum),
        ),
        ExecutableSpec::Pbft { n } => TrialProtocol::Pbft(PbftConfig::standard(n)),
    };
    let base = TrialSpec {
        protocol,
        network: NetworkConfig::lan(),
        commands: sim.commands,
        horizon_millis: sim.horizon_millis,
    };
    match sim.environment {
        FaultEnvironment::Clean => base,
        FaultEnvironment::GrayPrimary | FaultEnvironment::PartitionHeal => {
            base.with_pinned_leader()
        }
        FaultEnvironment::WanLossy => base.with_network(NetworkConfig::wan_heavy_tailed()),
    }
}

/// Appends the environment's scheduled events to a sampled crash/Byzantine
/// schedule, drawing event times from the per-trial RNG — the same RNG, in the
/// same order, at every thread count, which is what keeps environment cells
/// bit-identical under parallel fan-out. [`FaultEnvironment::Clean`] draws
/// nothing, so clean cells reproduce pre-environment results bit-for-bit.
fn apply_environment(
    environment: FaultEnvironment,
    n: usize,
    sim: &SimBudget,
    schedule: FaultSchedule,
    rng: &mut StdRng,
) -> FaultSchedule {
    let window_micros = SimTime::from_millis(sim.fault_window_millis).as_micros();
    match environment {
        FaultEnvironment::Clean => schedule,
        FaultEnvironment::GrayPrimary => {
            // The pinned leader goes gray at a sampled time inside the fault
            // window and never recovers: alive, correct, and useless.
            let at = SimTime::from_micros(rng.gen_range(0..=window_micros));
            schedule.slow_down_at(0, GRAY_SLOW_FACTOR, at)
        }
        FaultEnvironment::PartitionHeal => {
            // Split with the pinned leader on the minority side, heal at half the
            // horizon (never before the partition starts): the empirical question
            // is whether the remaining half-horizon is enough to recover.
            let at = SimTime::from_micros(rng.gen_range(0..=window_micros));
            let heal = SimTime::from_millis(sim.horizon_millis / 2).max(at);
            let minority: Vec<usize> = (0..n / 2).collect();
            let majority: Vec<usize> = (n / 2..n).collect();
            schedule
                .partition_at(vec![minority, majority], at)
                .heal_at(heal)
        }
        FaultEnvironment::WanLossy => {
            // One direction of the 0→1 link turns lossy at a sampled time; the
            // reverse direction keeps the base WAN loss — asymmetric degradation
            // on top of the heavy-tailed delay distribution.
            let at = SimTime::from_micros(rng.gen_range(0..=window_micros));
            schedule.link_override_at(0, 1, LinkQuality::lossy(WAN_LOSSY_LINK_DROP), at)
        }
    }
}

/// Runs `budget.sim.trials` deterministic simulation trials of `model` under fault
/// schedules sampled from the scenario and aggregates the verdicts — the body of
/// [`SimulationEngine::run`], exposed for benches and tests that want the report
/// without the [`AnalysisOutcome`] wrapper.
///
/// Fault schedules are sampled over the first [`SimBudget::fault_window_millis`]
/// of virtual time — mirroring the mission-window semantics of the analysis layer,
/// where a configuration's faults are in place when its liveness is judged — and
/// each trial then runs for the full horizon, giving elections and view changes
/// time to play out.
///
/// # Panics
///
/// Panics if the model has no executable counterpart
/// ([`ProtocolModel::executable`]) or disagrees with the scenario on the cluster
/// size; callers go through [`AnalysisEngine::supports`] (or the query API, which
/// validates cells at plan time).
pub fn simulate_reliability(
    model: &dyn ProtocolModel,
    scenario: Scenario<'_>,
    budget: &Budget,
) -> SimulationReport {
    let spec = model
        .executable()
        .expect("simulation requires an executable protocol model");
    assert_eq!(
        spec.num_nodes(),
        scenario.len(),
        "model and scenario disagree on the cluster size"
    );
    let target = scenario.to_correlation_model();
    let workload = trial_spec(spec, &budget.sim);
    let trials = budget.sim.trials.max(1);
    let fault_window = SimTime::from_millis(budget.sim.fault_window_millis);
    let tally = (0..trials)
        .into_par_iter()
        .map(|index| {
            let mut rng = StdRng::seed_from_u64(crate::montecarlo::chunk_seed(
                budget.seed ^ SIM_SEED_SALT,
                index as u64,
            ));
            let schedule = FaultSchedule::sample_from_correlation(&target, fault_window, &mut rng);
            let schedule = apply_environment(
                budget.sim.environment,
                spec.num_nodes(),
                &budget.sim,
                schedule,
                &mut rng,
            );
            let sim_seed: u64 = rng.gen();
            let trial = run_trial(&workload, &schedule, sim_seed);
            TrialTally {
                safe: trial.outcome.agreement as usize,
                live: trial.outcome.all_committed as usize,
                both: trial.outcome.safe_and_live() as usize,
                messages_delivered: trial.outcome.messages_delivered,
                leader_changes: trial.leader_changes,
                decided_commands: trial.decided_commands as u64,
                faults_injected: trial.stats.crashes + trial.stats.byzantine_turns,
                gray_events: trial.stats.slow_downs + trial.stats.speed_ups,
                net_events: trial.stats.partitions_started
                    + trial.stats.partitions_healed
                    + trial.stats.link_overrides,
            }
        })
        .collect::<Vec<_>>()
        .into_iter()
        .fold(TrialTally::default(), std::ops::Add::add);
    let per_trial = |total: u64| total as f64 / trials as f64;
    SimulationReport {
        safe: Estimate::from_counts(tally.safe, trials),
        live: Estimate::from_counts(tally.live, trials),
        safe_and_live: Estimate::from_counts(tally.both, trials),
        trials,
        mean_messages_delivered: per_trial(tally.messages_delivered),
        mean_leader_changes: per_trial(tally.leader_changes),
        mean_decided_commands: per_trial(tally.decided_commands),
        total_faults_injected: tally.faults_injected,
        total_gray_events: tally.gray_events,
        total_net_events: tally.net_events,
    }
}

/// The fifth engine: empirical discrete-event simulation of the executable
/// protocol (see the module docs for semantics, determinism and when it runs).
#[derive(Debug, Clone, Copy, Default)]
pub struct SimulationEngine;

impl AnalysisEngine for SimulationEngine {
    fn choice(&self) -> EngineChoice {
        EngineChoice::Simulation
    }

    fn name(&self) -> &'static str {
        "simulation"
    }

    fn supports(
        &self,
        model: &dyn ProtocolModel,
        scenario: Scenario<'_>,
        _budget: &Budget,
    ) -> bool {
        model
            .executable()
            .is_some_and(|spec| spec.num_nodes() == scenario.len())
    }

    fn run(
        &self,
        model: &dyn ProtocolModel,
        scenario: Scenario<'_>,
        budget: &Budget,
    ) -> AnalysisOutcome {
        let report = simulate_reliability(model, scenario, budget);
        AnalysisOutcome {
            report: ReliabilityReport::from_raw(RawReliability {
                p_safe: report.safe.value,
                p_live: report.live.value,
                p_safe_and_live: report.safe_and_live.value,
            }),
            engine: EngineChoice::Simulation,
            monte_carlo: None,
            rare_event: None,
            simulation: Some(report),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::Deployment;
    use crate::durability::PersistenceQuorumModel;
    use crate::pbft_model::PbftModel;
    use crate::raft_model::RaftModel;
    use fault_model::correlation::{CorrelationGroup, CorrelationModel};
    use fault_model::mode::FaultProfile;

    fn quick_budget(trials: usize) -> Budget {
        Budget::default().with_seed(11).with_sim(SimBudget {
            trials,
            horizon_millis: 2_000,
            fault_window_millis: 150,
            commands: 2,
            environment: FaultEnvironment::Clean,
        })
    }

    #[test]
    fn executable_models_are_supported_and_abstract_models_are_not() {
        let budget = Budget::default();
        let raft = RaftModel::standard(5);
        let deployment = Deployment::uniform_crash(5, 0.05);
        let scenario = Scenario::Independent(&deployment);
        assert!(SimulationEngine.supports(&raft, scenario, &budget));
        let flexible = RaftModel::flexible(5, 2, 4);
        assert!(SimulationEngine.supports(&flexible, scenario, &budget));
        let pbft = PbftModel::standard(5);
        assert!(SimulationEngine.supports(&pbft, scenario, &budget));
        // Placement-sensitive models have no executable counterpart.
        let durability = PersistenceQuorumModel::new(5, vec![0, 1]);
        assert!(!SimulationEngine.supports(&durability, scenario, &budget));
        // A size mismatch between model and scenario is not supported either.
        let tiny = Deployment::uniform_crash(3, 0.05);
        assert!(!SimulationEngine.supports(&raft, Scenario::Independent(&tiny), &budget));
    }

    #[test]
    fn healthy_cluster_simulates_fully_reliable() {
        let model = RaftModel::standard(3);
        let deployment = Deployment::uniform_crash(3, 0.0);
        let outcome =
            SimulationEngine.run(&model, Scenario::Independent(&deployment), &quick_budget(8));
        assert_eq!(outcome.engine, EngineChoice::Simulation);
        assert!(outcome.is_empirical() && !outcome.is_exact());
        let report = outcome.simulation.expect("simulation report attached");
        assert_eq!(report.trials, 8);
        assert_eq!(report.safe_and_live.value, 1.0);
        assert_eq!(report.total_faults_injected, 0);
        assert_eq!(report.mean_decided_commands, 2.0);
        assert!(report.mean_messages_delivered > 0.0);
    }

    #[test]
    fn injected_faults_show_up_in_the_trace_statistics() {
        // A guaranteed whole-cluster shock: every trial crashes all three nodes, so
        // liveness is lost in every trial while agreement (crash-only) holds.
        let profiles = vec![FaultProfile::crash_only(0.0); 3];
        let target = CorrelationModel::independent(profiles)
            .with_group(CorrelationGroup::crash_shock((0..3).collect(), 1.0));
        let model = RaftModel::standard(3);
        let outcome = SimulationEngine.run(&model, Scenario::Correlated(&target), &quick_budget(6));
        let report = outcome.simulation.expect("simulation report attached");
        assert_eq!(report.total_faults_injected, 18, "3 crashes x 6 trials");
        assert_eq!(report.live.value, 0.0);
        assert_eq!(report.safe.value, 1.0, "crashes never break agreement");
    }

    #[test]
    fn zero_trial_budget_saturates_to_one_trial() {
        let model = RaftModel::standard(3);
        let deployment = Deployment::uniform_crash(3, 0.1);
        let budget = Budget::default().with_seed(3).with_sim(SimBudget {
            trials: 0,
            horizon_millis: 1_000,
            fault_window_millis: 100,
            commands: 1,
            environment: FaultEnvironment::Clean,
        });
        let report = simulate_reliability(&model, Scenario::Independent(&deployment), &budget);
        assert_eq!(report.trials, 1);
        for e in [report.safe, report.live, report.safe_and_live] {
            assert!(0.0 <= e.lower && e.lower <= e.value && e.value <= e.upper && e.upper <= 1.0);
        }
    }

    #[test]
    fn reports_are_deterministic_per_seed_and_sensitive_to_it() {
        let model = RaftModel::standard(3);
        let deployment = Deployment::uniform_crash(3, 0.3);
        let scenario = Scenario::Independent(&deployment);
        let a = simulate_reliability(&model, scenario, &quick_budget(16));
        let b = simulate_reliability(&model, scenario, &quick_budget(16));
        assert_eq!(a, b);
        let other_seed = quick_budget(16).with_seed(99);
        let c = simulate_reliability(&model, scenario, &other_seed);
        assert_ne!(
            a, c,
            "a different seed must sample different fault schedules"
        );
    }

    #[test]
    #[should_panic(expected = "executable protocol model")]
    fn running_an_abstract_model_panics_with_a_clear_message() {
        let model = PersistenceQuorumModel::new(5, vec![0, 1]);
        let deployment = Deployment::uniform_crash(5, 0.05);
        simulate_reliability(&model, Scenario::Independent(&deployment), &quick_budget(1));
    }

    #[test]
    fn gray_primary_environment_stalls_liveness_the_analytic_model_cannot_see() {
        // Zero crash probability: the analytic model calls this deployment perfectly
        // reliable. The gray-primary environment slows the pinned leader without
        // ever marking it faulty — empirical liveness collapses while safety holds.
        // This asymmetry is the known-divergent cell of ROADMAP item 3.
        let model = RaftModel::standard(5);
        let deployment = Deployment::uniform_crash(5, 0.0);
        let scenario = Scenario::Independent(&deployment);
        let clean = simulate_reliability(&model, scenario, &quick_budget(12));
        let gray_budget = quick_budget(12).with_fault_environment(FaultEnvironment::GrayPrimary);
        let gray = simulate_reliability(&model, scenario, &gray_budget);
        assert_eq!(clean.total_gray_events, 0);
        assert_eq!(gray.total_gray_events, 12, "one slow-down per trial");
        assert_eq!(gray.safe.value, 1.0, "gray failure must never break safety");
        assert!(
            gray.live.value < clean.live.value,
            "a gray leader must cost liveness: clean {} vs gray {}",
            clean.live.value,
            gray.live.value
        );
        assert_eq!(
            gray.total_faults_injected, 0,
            "gray events are not boolean faults"
        );
    }

    #[test]
    fn partition_heal_environment_injects_net_events_every_trial() {
        let model = PbftModel::standard(4);
        let deployment = Deployment::uniform_crash(4, 0.0);
        let scenario = Scenario::Independent(&deployment);
        let budget = quick_budget(8).with_fault_environment(FaultEnvironment::PartitionHeal);
        let report = simulate_reliability(&model, scenario, &budget);
        assert_eq!(
            report.total_net_events, 16,
            "one partition and one heal per trial"
        );
        assert_eq!(report.safe.value, 1.0, "partitions must never break safety");
    }

    #[test]
    fn wan_lossy_environment_runs_heavy_tailed_and_overrides_a_link() {
        let model = RaftModel::standard(3);
        let deployment = Deployment::uniform_crash(3, 0.0);
        let scenario = Scenario::Independent(&deployment);
        let budget = quick_budget(6).with_fault_environment(FaultEnvironment::WanLossy);
        let report = simulate_reliability(&model, scenario, &budget);
        assert_eq!(report.total_net_events, 6, "one link override per trial");
        assert_eq!(report.safe.value, 1.0);
    }

    #[test]
    fn environment_reports_are_deterministic_per_seed() {
        let model = RaftModel::standard(5);
        let deployment = Deployment::uniform_crash(5, 0.05);
        let scenario = Scenario::Independent(&deployment);
        for environment in FaultEnvironment::ALL {
            let budget = quick_budget(10).with_fault_environment(environment);
            let a = simulate_reliability(&model, scenario, &budget);
            let b = simulate_reliability(&model, scenario, &budget);
            assert_eq!(a, b, "environment {environment} must be deterministic");
        }
    }
}
