//! Criterion benches for the analysis service: one full NDJSON exchange
//! (parse → plan → execute → stream) per iteration, on the mixed workload
//! `repro --bench` records in BENCH_analysis.json.
//!
//! The cold row pays a fresh session per request — scenario conversion, the
//! selector pilot, packed-kernel compilation and IS proposal learning every
//! time. The warm row is a long-lived server answering out of its session
//! cache — the workload `repro serve` exists for. `repro --bench` records the
//! warm rate as `server_queries_per_sec` and the cold/warm ratio as
//! `server_warm_cache_speedup`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_server_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("server-throughput");
    group.bench_function(
        bench::SERVER_QUERY_COLD_ID.trim_start_matches("server-throughput/"),
        |b| b.iter(bench::server_query_cold),
    );
    let server = Arc::new(repro_server::Server::new());
    bench::server_query_warm(&server);
    group.bench_function(
        bench::SERVER_QUERY_WARM_ID.trim_start_matches("server-throughput/"),
        |b| b.iter(|| bench::server_query_warm(&server)),
    );
    group.finish();
}

criterion_group!(benches, bench_server_throughput);
criterion_main!(benches);
