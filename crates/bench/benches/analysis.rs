//! Criterion benches for the analysis engines: how expensive is it to *compute* the
//! probabilistic guarantees the paper argues protocols should report?
//!
//! Covers the scaling comparison between exhaustive enumeration (2^N), the counting DP
//! (O(N³)) and Monte Carlo sampling, plus the full Table 1 / Table 2 regeneration cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prob_consensus::analyzer::{analyze, analyze_auto, analyze_exact};
use prob_consensus::counting::FaultCountDistribution;
use prob_consensus::deployment::Deployment;
use prob_consensus::engine::{AnalysisEngine, Budget, Scenario};
use prob_consensus::montecarlo::{
    monte_carlo_independent, monte_carlo_independent_par, monte_carlo_reliability_par_kernel,
    monte_carlo_reliability_par_kernel_lanes, McKernel,
};
use prob_consensus::pbft_model::PbftModel;
use prob_consensus::raft_model::RaftModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engines");
    for n in [5usize, 9, 13, 17] {
        let deployment = Deployment::uniform_crash(n, 0.02);
        let model = RaftModel::standard(n);
        group.bench_with_input(BenchmarkId::new("enumeration", n), &n, |b, _| {
            b.iter(|| analyze_exact(&model, &deployment))
        });
        group.bench_with_input(BenchmarkId::new("counting", n), &n, |b, _| {
            b.iter(|| analyze(&model, &deployment))
        });
    }
    for n in [25usize, 50, 100, 200] {
        let deployment = Deployment::uniform_crash(n, 0.02);
        let model = RaftModel::standard(n);
        group.bench_with_input(BenchmarkId::new("counting-large", n), &n, |b, _| {
            b.iter(|| analyze(&model, &deployment))
        });
    }
    group.finish();
}

fn bench_monte_carlo(c: &mut Criterion) {
    let mut group = c.benchmark_group("monte-carlo");
    let (model, deployment) = bench::mc_speedup_workload();
    for samples in [1_000usize, 10_000] {
        group.bench_with_input(
            BenchmarkId::new("raft-9", samples),
            &samples,
            |b, &samples| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(bench::MC_SPEEDUP_SEED);
                    monte_carlo_independent(&model, &deployment, samples, &mut rng)
                })
            },
        );
    }
    // The headline hot path: single-threaded sampling vs. the rayon-parallel engine on
    // the same workload `repro --bench` records in BENCH_analysis.json. On a machine
    // with >= 4 cores the parallel row should run >= 2x faster than the sequential one.
    group.bench_function(
        bench::MC_SEQUENTIAL_ID.trim_start_matches("monte-carlo/"),
        |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(bench::MC_SPEEDUP_SEED);
                monte_carlo_independent(&model, &deployment, bench::MC_SPEEDUP_SAMPLES, &mut rng)
            })
        },
    );
    group.bench_function(
        bench::MC_PARALLEL_ID.trim_start_matches("monte-carlo/"),
        |b| {
            b.iter(|| {
                monte_carlo_independent_par(
                    &model,
                    &deployment,
                    bench::MC_SPEEDUP_SAMPLES,
                    bench::MC_SPEEDUP_SEED,
                )
            })
        },
    );
    group.finish();
}

fn bench_packed_vs_scalar(c: &mut Criterion) {
    // The two Monte Carlo kernels head to head, same workload, same pool: the
    // bit-sliced packed kernel evaluates 64 scenarios per pass and should run
    // several times the scalar kernel's throughput on both of its plans (the
    // bit-sliced threshold plan for crash-only Raft, the LUT plan for mixed-mode
    // PBFT). `repro --bench` records the headline ratio as
    // `packed_kernel_speedup` in BENCH_analysis.json.
    let mut group = c.benchmark_group("packed-vs-scalar");
    let (raft, crash_deployment) = bench::mc_speedup_workload();
    let crash = fault_model::correlation::CorrelationModel::independent(
        crash_deployment.profiles().to_vec(),
    );
    let pbft = PbftModel::standard(7);
    let mixed = fault_model::correlation::CorrelationModel::independent(
        Deployment::uniform_mixed(7, 0.05, 0.01).profiles().to_vec(),
    );
    const SAMPLES: usize = 50_000;
    for (id, kernel) in [
        ("raft-9-scalar", McKernel::Scalar),
        ("raft-9-packed", McKernel::Packed),
    ] {
        group.bench_function(id, |b| {
            b.iter(|| {
                monte_carlo_reliability_par_kernel(
                    &raft,
                    &crash,
                    SAMPLES,
                    bench::MC_SPEEDUP_SEED,
                    kernel,
                )
            })
        });
    }
    for (id, kernel) in [
        ("pbft-7-mixed-scalar", McKernel::Scalar),
        ("pbft-7-mixed-packed", McKernel::Packed),
    ] {
        group.bench_function(id, |b| {
            b.iter(|| {
                monte_carlo_reliability_par_kernel(
                    &pbft,
                    &mixed,
                    SAMPLES,
                    bench::MC_SPEEDUP_SEED,
                    kernel,
                )
            })
        });
    }
    group.finish();
}

fn bench_packed_width(c: &mut Criterion) {
    // The packed kernel at pinned pass widths: 1, 4 and 8 u64 words (64, 256 and
    // 512 lanes per pass) on the raft-9 workload. Wider passes amortize per-pass
    // RNG and plan-walk overhead across more lanes and unlock the SIMD popcount
    // reduction; the W=8 row is the production configuration behind the absolute
    // `packed_samples_per_sec` baseline in BENCH_analysis.json.
    let mut group = c.benchmark_group("packed-width");
    let (model, deployment) = bench::mc_speedup_workload();
    let scenario =
        fault_model::correlation::CorrelationModel::independent(deployment.profiles().to_vec());
    for (id, lane_words) in bench::PACKED_WIDTH_IDS {
        group.bench_function(id.trim_start_matches("packed-width/"), |b| {
            b.iter(|| {
                monte_carlo_reliability_par_kernel_lanes(
                    &model,
                    &scenario,
                    bench::MC_SPEEDUP_SAMPLES,
                    bench::MC_SPEEDUP_SEED,
                    McKernel::Packed,
                    lane_words,
                )
            })
        });
    }
    group.finish();
}

fn bench_rare_event(c: &mut Criterion) {
    // The p ≈ 1e-8 workload (16 nodes, 4-node persistence quorum at p_u = 1%).
    // Importance sampling vs. naive Monte Carlo *at the same sample count*: the
    // wall-clock rows compare per-sample cost (the weighted sampler pays for the
    // adaptive pilot and the likelihood ratios), while the ≥100x headline is in
    // samples needed for equal CI width — naive sampling would have to draw ~1e8
    // samples per hit, and `bench::rare_event_sample_efficiency` (recorded in
    // BENCH_analysis.json and asserted ≥100x by the crate tests) quantifies it.
    let mut group = c.benchmark_group("rare-event");
    let (model, deployment) = bench::rare_event_workload();
    let budget = Budget::default()
        .with_samples(bench::RARE_EVENT_SAMPLES)
        .with_seed(bench::RARE_EVENT_SEED);
    group.bench_function(
        bench::RARE_EVENT_IS_ID.trim_start_matches("rare-event/"),
        |b| {
            b.iter(|| {
                prob_consensus::rare_event::ImportanceSamplingEngine.run(
                    &model,
                    Scenario::Independent(&deployment),
                    &budget,
                )
            })
        },
    );
    group.bench_function(
        bench::RARE_EVENT_MC_ID.trim_start_matches("rare-event/"),
        |b| {
            b.iter(|| {
                monte_carlo_independent_par(
                    &model,
                    &deployment,
                    bench::RARE_EVENT_SAMPLES,
                    bench::RARE_EVENT_SEED,
                )
            })
        },
    );
    group.finish();
}

fn bench_sweep(c: &mut Criterion) {
    // The sweep-amortization headline: the same correlated, packed-kernel-eligible
    // grid of cells (a convergence sweep over the sample budget), run as one
    // planned batch vs. as a naive per-cell front-door loop. The planned batch
    // runs the rare-event selector pilot and compiles the packed kernel once per
    // (model, scenario) group where the naive loop pays per cell; results are
    // bit-identical (asserted by the bench crate's tests). `repro --bench` records
    // the ratio as `sweep_amortization_speedup` in BENCH_analysis.json.
    let mut group = c.benchmark_group("sweep");
    group.bench_function(bench::SWEEP_NAIVE_ID.trim_start_matches("sweep/"), |b| {
        b.iter(bench::sweep_naive_loop)
    });
    group.bench_function(bench::SWEEP_PLANNED_ID.trim_start_matches("sweep/"), |b| {
        b.iter(bench::sweep_planned_batch)
    });
    // The mixed-workload pair: exact counting cells interleaved with packed Monte
    // Carlo cells, run through the work-stealing scheduler as one cost-ordered
    // DAG vs. the cell-at-a-time front-door loop. `repro --bench` records the
    // batch wall clock as `sweep_wall_clock_ms` and the ratio as
    // `sweep_mixed_speedup` in BENCH_analysis.json.
    group.bench_function(
        bench::SWEEP_MIXED_NAIVE_ID.trim_start_matches("sweep/"),
        |b| b.iter(bench::sweep_mixed_naive_loop),
    );
    group.bench_function(bench::SWEEP_MIXED_ID.trim_start_matches("sweep/"), |b| {
        b.iter(bench::sweep_mixed_batch)
    });
    group.finish();
}

fn bench_epistemic(c: &mut Criterion) {
    // The second-order posterior sweep: one correlated Raft cell re-analyzed
    // under 64 deterministic posterior parameter draws, every draw its own
    // scheduled packed Monte Carlo run. `repro --bench` derives
    // `posterior_draws_per_sec` from this row in BENCH_analysis.json.
    let mut group = c.benchmark_group("epistemic");
    group.bench_function(
        bench::EPISTEMIC_SWEEP_ID.trim_start_matches("epistemic/"),
        |b| b.iter(bench::epistemic_sweep_batch),
    );
    group.finish();
}

fn bench_optimizer(c: &mut Criterion) {
    // The deployment-optimizer search: the default catalogue × Raft cluster
    // sizes 3–9 (twelve counting-exact candidates) screened, ranked and
    // frontier-extracted as one three-tier search on a fresh session. `repro
    // --bench` derives `frontier_candidates_per_sec` from this row in
    // BENCH_analysis.json.
    let mut group = c.benchmark_group("optimizer");
    group.bench_function(
        bench::OPTIMIZER_BENCH_ID.trim_start_matches("optimizer/"),
        |b| b.iter(bench::optimizer_batch),
    );
    group.finish();
}

fn bench_auto_selection(c: &mut Criterion) {
    // analyze_auto routes through the engine registry; its overhead over calling the
    // counting engine directly should be negligible.
    let mut group = c.benchmark_group("auto-selection");
    let deployment = Deployment::uniform_crash(9, 0.02);
    let model = RaftModel::standard(9);
    let budget = Budget::default();
    group.bench_function("analyze-direct", |b| {
        b.iter(|| analyze(&model, &deployment))
    });
    group.bench_function("analyze-auto", |b| {
        b.iter(|| analyze_auto(&model, &deployment, &budget))
    });
    group.finish();
}

fn bench_fault_count_distribution(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault-count-distribution");
    for n in [10usize, 50, 100] {
        let deployment = Deployment::uniform_mixed(n, 0.04, 0.001);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| FaultCountDistribution::from_deployment(&deployment))
        });
    }
    group.finish();
}

fn bench_paper_tables(c: &mut Criterion) {
    c.bench_function("table1-pbft", |b| {
        b.iter(|| {
            for n in [4usize, 5, 7, 8] {
                analyze(
                    &PbftModel::standard(n),
                    &Deployment::uniform_byzantine(n, 0.01),
                );
            }
        })
    });
    c.bench_function("table2-raft", |b| {
        b.iter(|| {
            for n in [3usize, 5, 7, 9] {
                for p in [0.01, 0.02, 0.04, 0.08] {
                    analyze(&RaftModel::standard(n), &Deployment::uniform_crash(n, p));
                }
            }
        })
    });
}

criterion_group!(
    benches,
    bench_engines,
    bench_monte_carlo,
    bench_packed_vs_scalar,
    bench_packed_width,
    bench_rare_event,
    bench_sweep,
    bench_epistemic,
    bench_optimizer,
    bench_auto_selection,
    bench_fault_count_distribution,
    bench_paper_tables
);
criterion_main!(benches);
