//! Criterion benches for the discrete-event simulator and the executable protocols:
//! how much simulated work the validation experiments can afford per second.

use consensus_protocols::harness::{PbftHarness, RaftHarness};
use consensus_sim::network::NetworkConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_raft_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("raft-cluster");
    group.sample_size(10);
    for n in [3usize, 5, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut harness = RaftHarness::new(n, NetworkConfig::lan(), 42);
                harness.submit_commands(10);
                harness.run_for_millis(1_000)
            })
        });
    }
    group.finish();
}

fn bench_pbft_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("pbft-cluster");
    group.sample_size(10);
    for n in [4usize, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut harness = PbftHarness::new(n, NetworkConfig::lan(), 42);
                harness.submit_commands(10);
                harness.run_for_millis(1_000)
            })
        });
    }
    group.finish();
}

fn bench_sim_throughput(c: &mut Criterion) {
    // The simulation engine's batch path: one full validation cell — a batch of
    // SIM_THROUGHPUT_TRIALS deterministic 5-node Raft traces with sampled fault
    // schedules, fanned out across the pool. Per-trace cost is the batch time
    // divided by the trial count; `repro --bench` records the inverse as
    // `sim_traces_per_sec` in BENCH_analysis.json.
    let mut group = c.benchmark_group("sim-throughput");
    group.sample_size(10);
    group.bench_function(
        bench::SIM_THROUGHPUT_ID.trim_start_matches("sim-throughput/"),
        |b| b.iter(bench::sim_throughput_batch),
    );
    group.finish();
}

fn bench_sim_faults(c: &mut Criterion) {
    // The adversarial fault environments on the same batch path: every trial
    // draws a scheduled environment event (a gray slow-down of the pinned Raft
    // leader, or a PBFT partition that heals before the horizon) on top of the
    // sampled crash schedule. `repro --bench` records the gray batch's inverse
    // per-trace cost as `gray_failure_traces_per_sec` in BENCH_analysis.json.
    let mut group = c.benchmark_group("sim-faults");
    group.sample_size(10);
    group.bench_function(
        bench::GRAY_FAULT_ID.trim_start_matches("sim-faults/"),
        |b| b.iter(bench::gray_primary_batch),
    );
    group.bench_function(
        bench::HEAL_FAULT_ID.trim_start_matches("sim-faults/"),
        |b| b.iter(bench::partition_heal_batch),
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_raft_cluster,
    bench_pbft_cluster,
    bench_sim_throughput,
    bench_sim_faults
);
criterion_main!(benches);
