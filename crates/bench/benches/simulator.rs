//! Criterion benches for the discrete-event simulator and the executable protocols:
//! how much simulated work the validation experiments can afford per second.

use consensus_protocols::harness::{PbftHarness, RaftHarness};
use consensus_sim::network::NetworkConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_raft_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("raft-cluster");
    group.sample_size(10);
    for n in [3usize, 5, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut harness = RaftHarness::new(n, NetworkConfig::lan(), 42);
                harness.submit_commands(10);
                harness.run_for_millis(1_000)
            })
        });
    }
    group.finish();
}

fn bench_pbft_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("pbft-cluster");
    group.sample_size(10);
    for n in [4usize, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut harness = PbftHarness::new(n, NetworkConfig::lan(), 42);
                harness.submit_commands(10);
                harness.run_for_millis(1_000)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_raft_cluster, bench_pbft_cluster);
criterion_main!(benches);
