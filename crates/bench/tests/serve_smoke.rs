//! Smoke test of the `repro serve` binary: two plans submitted concurrently
//! over the stdio NDJSON protocol must stream cells that re-assemble into
//! reports byte-identical to one-shot library execution, and the `stats`
//! request must expose non-zero cache counters and plan wall time.

use std::io::{BufRead, BufReader, Lines, Write};
use std::process::{ChildStdout, Command, Stdio};
use std::sync::Arc;

use prob_consensus::json::JsonValue;
use prob_consensus::query::AnalysisSession;

/// The two example plans: a mixed grid (counting + packed-MC cells) and a
/// rare-event persistence-quorum cell — together they cover all three engine
/// families the cache amortizes.
const GRID_QUERY: &str = r#"{"protocols":["raft","pbft"],"nodes":[5,9],"fault_probs":[0.01,0.05],"samples":20000,"seed":41}"#;
const DURABILITY_QUERY: &str = r#"{"cells":[{"label":"pq","model":{"persistence_quorum":{"quorum":[0,1,2,3]}},"deployment":{"uniform_crash":{"n":16,"p":0.01}}}],"samples":20000,"seed":41}"#;

fn zero_wall_ns(value: &mut JsonValue) {
    match value {
        JsonValue::Object(members) => {
            for (key, member) in members {
                if key == "wall_ns" {
                    *member = JsonValue::number(0.0);
                } else {
                    zero_wall_ns(member);
                }
            }
        }
        JsonValue::Array(items) => items.iter_mut().for_each(zero_wall_ns),
        _ => {}
    }
}

/// One-shot reference cells for a query body, serialized compact with wall
/// clocks zeroed.
fn reference_cells(query_body: &str) -> Vec<String> {
    let spec = JsonValue::parse(query_body).expect("fixture parses");
    let parsed = repro_server::parse_query(&spec).expect("fixture is a valid query");
    let report = AnalysisSession::new()
        .run(&parsed.query)
        .expect("reference run succeeds");
    let json = report.to_json_value();
    json.get("cells")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|cell| {
            let mut cell = cell.clone();
            zero_wall_ns(&mut cell);
            cell.to_compact_string()
        })
        .collect()
}

/// Reads parsed events until `until` says stop (the matching event is kept).
fn read_until(
    lines: &mut Lines<BufReader<ChildStdout>>,
    events: &mut Vec<JsonValue>,
    until: impl Fn(&JsonValue) -> bool,
) {
    for line in lines.by_ref() {
        let line = line.expect("read event line");
        let event = JsonValue::parse(&line).expect("every event line is one JSON object");
        let stop = until(&event);
        events.push(event);
        if stop {
            return;
        }
    }
    panic!("server closed its output before the expected event");
}

fn is_event(event: &JsonValue, id: &str, kind: &str) -> bool {
    event.get("id").and_then(|v| v.as_str()) == Some(id)
        && event.get("event").and_then(|v| v.as_str()) == Some(kind)
}

#[test]
fn serve_streams_reports_matching_one_shot_execution() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("serve")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("repro serve starts");
    let mut stdin = child.stdin.take().expect("stdin piped");
    let mut lines = BufReader::new(child.stdout.take().expect("stdout piped")).lines();
    let mut events = Vec::new();

    // Both plans in flight before either finishes; their cell events interleave
    // on the shared pool.
    write!(
        stdin,
        "{{\"id\":\"grid\",\"op\":\"query\",\"query\":{GRID_QUERY}}}\n\
         {{\"id\":\"durability\",\"op\":\"query\",\"query\":{DURABILITY_QUERY}}}\n"
    )
    .expect("submit queries");
    stdin.flush().unwrap();
    read_until(&mut lines, &mut events, |e| is_event(e, "grid", "done"));
    if !events.iter().any(|e| is_event(e, "durability", "done")) {
        read_until(&mut lines, &mut events, |e| {
            is_event(e, "durability", "done")
        });
    }

    // Stats requested after both plans completed: every counter must be live.
    writeln!(stdin, "{{\"id\":\"s\",\"op\":\"stats\"}}").expect("submit stats");
    stdin.flush().unwrap();
    read_until(&mut lines, &mut events, |e| is_event(e, "s", "stats"));

    writeln!(stdin, "{{\"id\":\"bye\",\"op\":\"shutdown\"}}").expect("submit shutdown");
    drop(stdin);
    read_until(&mut lines, &mut events, |e| is_event(e, "bye", "shutdown"));
    assert!(lines.next().is_none(), "no output after the shutdown ack");
    let status = child.wait().expect("repro serve exits");
    assert!(status.success(), "serve exited with {status}");

    let events_for = |id: &str, kind: &str| -> Vec<&JsonValue> {
        events.iter().filter(|e| is_event(e, id, kind)).collect()
    };

    // Streamed cells re-assemble (by index) into the one-shot report, byte for
    // byte once the measured wall clocks are zeroed.
    for (id, body) in [("grid", GRID_QUERY), ("durability", DURABILITY_QUERY)] {
        let expected = reference_cells(body);
        assert_eq!(events_for(id, "done").len(), 1, "query {id} finished once");
        assert!(events_for(id, "error").is_empty(), "query {id} errored");
        let cells = events_for(id, "cell");
        assert_eq!(
            cells.len(),
            expected.len(),
            "query {id} streamed every cell"
        );
        let mut reassembled = vec![None; expected.len()];
        for event in cells {
            let index = event.get("index").unwrap().as_f64().unwrap() as usize;
            let mut cell = event.get("cell").unwrap().clone();
            zero_wall_ns(&mut cell);
            assert!(
                reassembled[index]
                    .replace(cell.to_compact_string())
                    .is_none(),
                "query {id} cell {index} emitted twice"
            );
        }
        let reassembled: Vec<String> = reassembled.into_iter().map(Option::unwrap).collect();
        assert_eq!(
            reassembled, expected,
            "query {id} diverged from one-shot run"
        );
    }

    // Observability: non-zero cache counters and per-plan wall time.
    let stats = events_for("s", "stats");
    assert_eq!(stats.len(), 1, "exactly one stats event");
    let cache = stats[0].get("cache").unwrap();
    assert!(cache.get("misses").unwrap().as_f64().unwrap() > 0.0);
    assert!(cache.get("entries").unwrap().as_f64().unwrap() > 0.0);
    assert_eq!(
        stats[0].get("queries_completed").unwrap().as_f64().unwrap(),
        2.0
    );
    let wall = stats[0].get("plan_wall_ms").unwrap();
    assert!(wall.get("last").unwrap().as_f64().unwrap() > 0.0);
    assert!(wall.get("total").unwrap().as_f64().unwrap() > 0.0);
}

/// The `optimize` op end to end: a deployment search submitted over the wire
/// must return the exact report an in-process [`prob_consensus::optimize`]
/// search produces (the frontier carries no wall clocks, so byte-identical),
/// reject malformed payloads with an `error` event instead of dying, and show
/// up in the `stats` counters.
#[test]
fn serve_optimize_matches_in_process_search() {
    // The placement-sensitive durability space from the optimizer test suite:
    // small enough for a smoke test, still exercises tier-2 IS refinement.
    let space = r#"{"instances":[{"name":"spot","fault_probability":0.1,"hourly_cost":0.1}],"nodes":[40],"domains":{"racks":8,"shock_probability":0.01},"placements":["same-rack","cross-rack"],"target":{"quorum_size":5}}"#;
    let config = r#"{"target_nines":4.0,"screen_samples":10000,"refine_samples":40000,"seed":7}"#;

    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("serve")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("repro serve starts");
    let mut stdin = child.stdin.take().expect("stdin piped");
    let mut lines = BufReader::new(child.stdout.take().expect("stdout piped")).lines();
    let mut events = Vec::new();

    write!(
        stdin,
        "{{\"id\":\"opt\",\"op\":\"optimize\",\"space\":{space},\"config\":{config}}}\n\
         {{\"id\":\"bad\",\"op\":\"optimize\",\"space\":{space},\"config\":{{\"target_nines\":4.0,\"scren_samples\":1}}}}\n"
    )
    .expect("submit optimize requests");
    stdin.flush().unwrap();
    read_until(&mut lines, &mut events, |e| is_event(e, "opt", "done"));
    if !events.iter().any(|e| is_event(e, "bad", "error")) {
        read_until(&mut lines, &mut events, |e| is_event(e, "bad", "error"));
    }
    writeln!(stdin, "{{\"id\":\"s\",\"op\":\"stats\"}}").expect("submit stats");
    stdin.flush().unwrap();
    read_until(&mut lines, &mut events, |e| is_event(e, "s", "stats"));
    writeln!(stdin, "{{\"id\":\"bye\",\"op\":\"shutdown\"}}").expect("submit shutdown");
    drop(stdin);
    read_until(&mut lines, &mut events, |e| is_event(e, "bye", "shutdown"));
    assert!(child.wait().expect("repro serve exits").success());

    // The streamed report is byte-identical to the in-process search.
    let spec = JsonValue::parse(&format!("{{\"space\":{space},\"config\":{config}}}"))
        .expect("fixture parses");
    let parsed = repro_server::parse_optimize(&spec).expect("fixture is a valid request");
    let reference =
        prob_consensus::optimize::optimize(&AnalysisSession::new(), &parsed.space, &parsed.config)
            .expect("reference search succeeds");
    let reports: Vec<&JsonValue> = events
        .iter()
        .filter(|e| is_event(e, "opt", "optimize"))
        .collect();
    assert_eq!(reports.len(), 1, "exactly one optimize event");
    assert_eq!(
        reports[0].get("report").unwrap().to_compact_string(),
        reference.to_json_value().to_compact_string(),
        "wire report diverged from in-process search"
    );
    let done = events
        .iter()
        .find(|e| is_event(e, "opt", "done"))
        .expect("done event");
    assert_eq!(
        done.get("frontier").unwrap().as_f64().unwrap() as usize,
        reference.frontier.len()
    );
    assert_eq!(
        done.get("evaluated").unwrap().as_f64().unwrap() as usize,
        reference.evaluated.len()
    );

    // The misspelled knob drew an error, not a silent default — and never a
    // second done event.
    let bad_errors: Vec<&JsonValue> = events
        .iter()
        .filter(|e| is_event(e, "bad", "error"))
        .collect();
    assert_eq!(bad_errors.len(), 1);
    assert!(bad_errors[0]
        .get("message")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("scren_samples"));
    assert!(!events.iter().any(|e| is_event(e, "bad", "done")));

    // Observability: the search is counted separately from queries.
    let stats = events
        .iter()
        .find(|e| is_event(e, "s", "stats"))
        .expect("stats event");
    assert_eq!(
        stats
            .get("optimizations_completed")
            .unwrap()
            .as_f64()
            .unwrap(),
        1.0
    );
    assert_eq!(
        stats.get("queries_completed").unwrap().as_f64().unwrap(),
        0.0
    );
}

/// The warm-cache contract the server exists for: a second identical request
/// on a live server must hit the session cache (no recompilation, no repeated
/// pilots).
#[test]
fn repeated_requests_hit_the_shared_cache() {
    let server = Arc::new(repro_server::Server::new());
    let input = format!("{{\"id\":\"a\",\"op\":\"query\",\"query\":{DURABILITY_QUERY}}}\n");
    repro_server::run_exchange(&server, &input);
    let cold = server.session().cache_stats();
    assert_eq!(cold.hits, 0);
    assert!(cold.misses > 0);
    repro_server::run_exchange(&server, &input);
    let warm = server.session().cache_stats();
    assert!(warm.hits > 0, "second identical request missed the cache");
    assert_eq!(
        warm.misses, cold.misses,
        "second request recomputed scratch"
    );
}
