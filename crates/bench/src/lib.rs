//! Experiment implementations behind the `repro` harness.
//!
//! Every table and quantitative claim in the paper's evaluation has a function here that
//! recomputes it and returns a formatted [`Table`] (see DESIGN.md for the experiment
//! index). The `repro` binary prints them; the unit tests in this crate and the
//! integration tests at the workspace root assert the headline numbers.

// Documentation is part of this crate's contract: every public item is
// documented, and CI builds rustdoc with `-D warnings` (see the `docs` job).
#![warn(missing_docs)]
use fault_model::correlation::{CorrelationGroup, CorrelationModel};
use fault_model::curve::WeibullCurve;
use fault_model::metrics::HOURS_PER_YEAR;
use fault_model::mode::FaultProfile;
use fault_model::node::{Fleet, NodeSpec};
use prob_consensus::analyzer::{analyze_auto, analyze_scenario};
use prob_consensus::committee::committee_vs_full_cluster;
use prob_consensus::cost::{cost_equivalence, default_catalogue, CostEquivalence};
use prob_consensus::deployment::Deployment;
use prob_consensus::durability::{durability_claim, DurabilityClaim, PersistenceQuorumModel};
use prob_consensus::dynamic_quorum::{smallest_raft_quorums, trigger_quorum_comparison};
use prob_consensus::engine::{
    AnalysisEngine, AnalysisOutcome, Budget, EngineChoice, FaultEnvironment, Scenario, SimBudget,
};
use prob_consensus::heterogeneity::{heterogeneity_analysis, HeterogeneityAnalysis};
use prob_consensus::leader::{leader_failure_probability, LeaderPolicy};
use prob_consensus::montecarlo::{monte_carlo_independent_par, McKernel};
use prob_consensus::optimize::{
    optimize, DeploymentSpace, FailureDomains, NodeType, OptimizeReport, OptimizerConfig,
    Placement, TargetSpec,
};
use prob_consensus::pbft_model::PbftModel;
use prob_consensus::query::{
    AnalysisReport, AnalysisSession, CellRecord, CorrelationSpec, FaultAxis, ProtocolSpec, Query,
};
use prob_consensus::raft_model::RaftModel;
use prob_consensus::report::{percent, Table};
use prob_consensus::timevarying::{reliability_trajectory, summarize};
use prob_consensus::tradeoff::{compare, pbft_sweep};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Experiment `table1`: PBFT reliability at uniform p_u = 1% (Table 1 of the paper).
/// The N sweep runs as one planned batch through the query API.
pub fn table1() -> Table {
    let session = AnalysisSession::new();
    let report = session
        .run(
            &Query::new()
                .protocols([ProtocolSpec::Pbft])
                .nodes([4usize, 5, 7, 8])
                .fault_probs([0.01])
                .faults(FaultAxis::Byzantine),
        )
        .expect("well-formed Table 1 sweep");
    let mut table = Table::new(
        "Table 1: PBFT reliability, uniform p_u = 1%",
        &[
            "N",
            "|Q_eq|",
            "|Q_per|",
            "|Q_vc|",
            "|Q_vc_t|",
            "Safe %",
            "Live %",
            "Safe and Live %",
        ],
    );
    for cell in report.cells() {
        let model = PbftModel::standard(cell.nodes);
        table.push_row(vec![
            cell.nodes.to_string(),
            model.q_eq().to_string(),
            model.q_per().to_string(),
            model.q_vc().to_string(),
            model.q_vc_t().to_string(),
            cell.outcome.report.safe.as_percent(),
            cell.outcome.report.live.as_percent(),
            cell.outcome.report.safe_and_live.as_percent(),
        ]);
    }
    table
}

/// Experiment `table2`: Raft reliability for uniform node failure p_u (Table 2).
/// The N × p grid runs as one planned batch through the query API.
pub fn table2() -> Table {
    const NS: [usize; 4] = [3, 5, 7, 9];
    const PS: [f64; 4] = [0.01, 0.02, 0.04, 0.08];
    let session = AnalysisSession::new();
    let report = session
        .run(
            &Query::new()
                .protocols([ProtocolSpec::Raft])
                .nodes(NS)
                .fault_probs(PS),
        )
        .expect("well-formed Table 2 sweep");
    let mut table = Table::new(
        "Table 2: Raft reliability for uniform node failure p_u",
        &[
            "N", "|Q_per|", "|Q_vc|", "S&L p=1%", "S&L p=2%", "S&L p=4%", "S&L p=8%",
        ],
    );
    for (i, n) in NS.into_iter().enumerate() {
        let model = RaftModel::standard(n);
        let mut row = vec![
            n.to_string(),
            model.q_per().to_string(),
            model.q_vc().to_string(),
        ];
        // Grid cells are in axis-nesting order: the p-axis is the inner loop.
        for j in 0..PS.len() {
            let cell = report.cell(i * PS.len() + j);
            debug_assert_eq!(cell.nodes, n);
            row.push(cell.outcome.report.safe_and_live.as_percent());
        }
        table.push_row(row);
    }
    table
}

/// Experiment `claim-three-nines`: "Raft with N = 3 is only 3 nines safe and live".
pub fn claim_three_nines() -> Table {
    let mut table = Table::new(
        "Claim: f-threshold protocols are not 100% reliable (Raft N=3, p_u=1%)",
        &["Metric", "Value"],
    );
    let report = analyze_auto(
        &RaftModel::standard(3),
        &Deployment::uniform_crash(3, 0.01),
        &Budget::default(),
    )
    .report;
    table.push_row(vec!["Safe".into(), report.safe.as_percent()]);
    table.push_row(vec!["Live".into(), report.live.as_percent()]);
    table.push_row(vec![
        "Safe and live".into(),
        report.safe_and_live.as_percent(),
    ]);
    table.push_row(vec![
        "Nines (safe and live)".into(),
        format!("{:.2}", report.safe_and_live.nines()),
    ]);
    table
}

/// Experiment `claim-cheap-nodes`: nine 8% spot nodes match three 1% on-demand nodes at
/// roughly a third of the cost.
pub fn claim_cheap_nodes() -> (Table, CostEquivalence) {
    let catalogue = default_catalogue();
    let eq = cost_equivalence(&catalogue[0], &catalogue[1], 3, 9, RaftModel::standard);
    let mut table = Table::new(
        "Claim: larger networks of less reliable nodes can help",
        &["Deployment", "S&L", "$ / hour", "Cost vs baseline"],
    );
    table.push_row(vec![
        format!("{} x {} (p=1%)", eq.baseline.n, eq.baseline.instance.name),
        eq.baseline.report.safe_and_live.as_percent(),
        format!("{:.2}", eq.baseline.hourly_cost),
        "1.00x".into(),
    ]);
    table.push_row(vec![
        format!(
            "{} x {} (p=8%)",
            eq.alternative.n, eq.alternative.instance.name
        ),
        eq.alternative.report.safe_and_live.as_percent(),
        format!("{:.2}", eq.alternative.hourly_cost),
        format!("{:.2}x cheaper", eq.cost_reduction_factor()),
    ]);
    (table, eq)
}

/// Experiment `claim-quorum-overkill`: linear-size trigger quorums vs probabilistic
/// sampling at N = 100, p_u = 1%.
pub fn claim_quorum_overkill() -> Table {
    let comparison = trigger_quorum_comparison(100, 0.01, 1.0 - 1e-10);
    let mut table = Table::new(
        "Claim: linear size quorums can be overkill (N=100, p_u=1%)",
        &["Rule", "|Q_vc_t|", "P(contains a correct node)"],
    );
    table.push_row(vec![
        "f-threshold (f+1)".into(),
        comparison.f_threshold_size.to_string(),
        "1 (worst-case guarantee)".into(),
    ]);
    table.push_row(vec![
        "probabilistic sample".into(),
        comparison.probabilistic_size.to_string(),
        percent(comparison.achieved),
    ]);
    table
}

/// Experiment `claim-heterogeneous`: the 7-node heterogeneous Raft example of §3.2.
pub fn claim_heterogeneous() -> (Table, HeterogeneityAnalysis) {
    let baseline = Deployment::uniform_crash(7, 0.08);
    let analysis = heterogeneity_analysis(&baseline, 3, FaultProfile::crash_only(0.01), 4, |d| {
        analyze_auto(&RaftModel::standard(7), d, &Budget::default())
            .report
            .safe_and_live
    });
    let mut table = Table::new(
        "Claim: Raft and PBFT underutilize reliable nodes (7-node Raft)",
        &["Configuration", "Value"],
    );
    table.push_row(vec![
        "S&L, 7 x 8% nodes".into(),
        analysis.baseline_safe_and_live.as_percent(),
    ]);
    table.push_row(vec![
        "S&L, 3 nodes upgraded to 1%".into(),
        analysis.upgraded_safe_and_live.as_percent(),
    ]);
    table.push_row(vec![
        "Durability, fault-curve-oblivious quorum".into(),
        analysis.oblivious_durability.as_percent(),
    ]);
    table.push_row(vec![
        "Durability, quorum must include a reliable node".into(),
        analysis.aware_durability.as_percent(),
    ]);
    (table, analysis)
}

/// Experiment `claim-tradeoff`: the hidden safety/liveness trade-off between 4-, 5- and
/// 7-node PBFT at p_u = 1%.
pub fn claim_tradeoff() -> Table {
    let points = pbft_sweep(&[4, 5, 7], 0.01);
    let mut table = Table::new(
        "Claim: hidden safety/liveness trade-off (PBFT, p_u = 1%)",
        &["N", "Safe %", "Live %", "Relative cost"],
    );
    for p in &points {
        table.push_row(vec![
            p.n.to_string(),
            p.report.safe.as_percent(),
            p.report.live.as_percent(),
            format!("{:.2}x", p.relative_cost / points[0].relative_cost),
        ]);
    }
    let c = compare(&points[0], &points[1]);
    table.push_row(vec![
        "5 vs 4".into(),
        format!("{:.0}x safer", c.safety_improvement),
        format!("{:.2}x less live", c.liveness_degradation),
        format!("{:.2}x", c.cost_ratio),
    ]);
    table
}

/// Experiment `claim-durability`: the §4 durability argument at N = 100, |Q_per| = 10,
/// p_u = 10%.
pub fn claim_durability() -> (Table, DurabilityClaim) {
    let deployment = Deployment::uniform_crash(100, 0.10);
    let claim = durability_claim(&deployment, 10);
    let mut table = Table::new(
        "Claim: |Q_per| faults rarely mean data loss (N=100, |Q_per|=10, p_u=10%)",
        &["Quantity", "Probability"],
    );
    table.push_row(vec![
        "At least |Q_per| simultaneous faults".into(),
        format!("{:.3}", claim.p_threshold_exceeded),
    ]);
    table.push_row(vec![
        "Faults cover the last persistence quorum".into(),
        format!("{:.2e}", claim.p_data_loss),
    ]);
    table.push_row(vec![
        "Pessimism factor".into(),
        format!("{:.2e}", claim.pessimism_factor()),
    ]);
    (table, claim)
}

/// Cluster size of the `claim-durability-correlated` experiment (§4 scale).
pub const DURABILITY_N: usize = 100;
/// Persistence-quorum size of the experiment (the paper's |Q_per| = 10).
pub const DURABILITY_QUORUM: usize = 10;
/// Per-node fault probability of the experiment (the paper's p_u = 10%).
pub const DURABILITY_P: f64 = 0.10;
/// Rack count: 10 racks of 10 nodes, each a crash-shock correlation group.
pub const DURABILITY_RACKS: usize = 10;
/// Probability that a whole rack fails together within the window.
pub const DURABILITY_RACK_SHOCK: f64 = 0.01;
/// Sample budget of each estimated cell.
pub const DURABILITY_SAMPLES: usize = 80_000;
/// Seed of the experiment (fixed for reproducibility; like any fixed-seed 95% CI,
/// an unlucky seed can put the truth just outside the interval — this one does not).
pub const DURABILITY_SEED: u64 = 2026;

/// One analyzed cell of the correlated-durability experiment: the engine the
/// auto-selector picked, its loss estimate with CI, and how many plain Monte Carlo
/// samples would be needed for the same CI width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurabilityEstimate {
    /// Closed-form data-loss probability of this cell (all cells here factorize).
    pub exact: f64,
    /// The engine `analyze_scenario` auto-selected.
    pub engine: EngineChoice,
    /// Estimated data-loss probability (complement of the safety estimate).
    pub p_loss: f64,
    /// Lower bound of the 95% CI on the loss probability.
    pub ci_lower: f64,
    /// Upper bound of the 95% CI on the loss probability.
    pub ci_upper: f64,
    /// Samples the sampling engine drew.
    pub samples: usize,
    /// Effective sample size (importance sampling only).
    pub ess: Option<f64>,
    /// Samples plain Monte Carlo would need for an equal-width 95% interval at this
    /// loss probability: `z²·p̂(1−p̂)/h²` with `h` the CI half-width.
    pub mc_equivalent_samples: f64,
}

impl DurabilityEstimate {
    /// Whether the reported interval contains the closed-form answer.
    pub fn ci_contains_exact(&self) -> bool {
        self.ci_lower <= self.exact && self.exact <= self.ci_upper
    }

    /// Sample-efficiency factor over plain Monte Carlo at equal CI width.
    pub fn efficiency_factor(&self) -> f64 {
        self.mc_equivalent_samples / self.samples as f64
    }
}

/// The three cells of the `claim-durability-correlated` experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelatedDurability {
    /// No correlation: the paper's own §4 setting, loss = p_u^|Q| = 1e-10.
    pub independent: DurabilityEstimate,
    /// Racks shocked, quorum packed into one rack: loss ≈ the rack shock (1e-2).
    pub same_rack: DurabilityEstimate,
    /// Racks shocked, quorum spread one-per-rack: loss ≈ (marginal p)^|Q| ≈ 2.4e-10.
    pub cross_rack: DurabilityEstimate,
}

/// Samples plain Monte Carlo would need for a 95% interval of half-width
/// `half_width` at proportion `p`: `z²·p·(1−p)/h²` (infinite for a degenerate
/// interval). The one definition behind the experiment table, the
/// `rare_event_sample_efficiency` baseline number and the tests that assert it.
fn mc_equivalent_samples(p: f64, half_width: f64) -> f64 {
    if half_width <= 0.0 {
        return f64::INFINITY;
    }
    let z = prob_consensus::montecarlo::Z_95;
    z * z * p * (1.0 - p) / (half_width * half_width)
}

fn durability_cell(record: &CellRecord, exact: f64) -> DurabilityEstimate {
    let outcome = &record.outcome;
    let (safe, samples, ess) = if let Some(re) = outcome.rare_event {
        (re.safe, re.samples, Some(re.ess))
    } else if let Some(mc) = outcome.monte_carlo {
        (mc.safe, mc.samples, None)
    } else {
        unreachable!("durability cells are too large for the exact engines")
    };
    let (p_loss, ci_lower, ci_upper) = (1.0 - safe.value, 1.0 - safe.upper, 1.0 - safe.lower);
    DurabilityEstimate {
        exact,
        engine: outcome.engine,
        p_loss,
        ci_lower,
        ci_upper,
        samples,
        ess,
        mc_equivalent_samples: mc_equivalent_samples(p_loss, (ci_upper - ci_lower) / 2.0),
    }
}

/// Experiment `claim-durability-correlated`: the §4 durability argument re-run where
/// plain Monte Carlo cannot go — as a placement-sensitive model (loss of one
/// *specific* quorum, not a fault count) at N = 100, with and without rack-level
/// correlated shocks.
///
/// The independent cell reproduces the counting-engine-era 1e-10 answer from ~1e5
/// weighted samples where plain sampling would need ~1e12; the correlated cells show
/// what the exact engines can never see: the same quorum packed into one rack is
/// *eight orders of magnitude* less durable than spread across racks.
pub fn claim_durability_correlated() -> (Table, CorrelatedDurability) {
    let budget = Budget::default()
        .with_samples(DURABILITY_SAMPLES)
        .with_seed(DURABILITY_SEED);
    let rack = DURABILITY_N / DURABILITY_RACKS;
    let profiles = vec![FaultProfile::crash_only(DURABILITY_P); DURABILITY_N];

    let independent_deployment = Deployment::from_profiles(profiles.clone());
    let quorum: Vec<usize> = (0..DURABILITY_QUORUM).collect();
    let packed_model: Arc<dyn prob_consensus::ProtocolModel + Send + Sync> =
        Arc::new(PersistenceQuorumModel::new(DURABILITY_N, quorum));

    // Rack-correlated failure model: nodes 10r..10r+10 share a crash shock.
    let mut correlated = CorrelationModel::independent(profiles);
    for r in 0..DURABILITY_RACKS {
        correlated = correlated.with_group(CorrelationGroup::crash_shock(
            (r * rack..(r + 1) * rack).collect(),
            DURABILITY_RACK_SHOCK,
        ));
    }
    let spread: Vec<usize> = (0..DURABILITY_QUORUM).map(|i| i * rack).collect();
    let spread_model: Arc<dyn prob_consensus::ProtocolModel + Send + Sync> =
        Arc::new(PersistenceQuorumModel::new(DURABILITY_N, spread));

    // The three cells as one planned batch: (1) independent, quorum = the first
    // |Q| nodes, loss = p^|Q|; (2) quorum packed into rack 0, loss =
    // shock + (1-shock)·p^|Q|; (3) quorum spread one node per rack, members
    // independent of each other with the shock folded into the marginal, loss =
    // (1-(1-p)(1-shock))^|Q|.
    let session = AnalysisSession::new();
    let report = session
        .run(
            &Query::new()
                .budget(budget)
                .cell("independent", packed_model.clone(), independent_deployment)
                .cell_correlated("same-rack", packed_model, correlated.clone())
                .cell_correlated("cross-rack", spread_model, correlated),
        )
        .expect("well-formed durability cells");
    let marginal = 1.0 - (1.0 - DURABILITY_P) * (1.0 - DURABILITY_RACK_SHOCK);
    let independent = durability_cell(report.cell(0), DURABILITY_P.powi(DURABILITY_QUORUM as i32));
    let same_rack = durability_cell(
        report.cell(1),
        DURABILITY_RACK_SHOCK
            + (1.0 - DURABILITY_RACK_SHOCK) * DURABILITY_P.powi(DURABILITY_QUORUM as i32),
    );
    let cross_rack = durability_cell(report.cell(2), marginal.powi(DURABILITY_QUORUM as i32));

    let mut table = Table::new(
        format!(
            "Claim: durability under correlated racks (N={DURABILITY_N}, |Q_per|={DURABILITY_QUORUM}, p_u={}%, rack shock {}%)",
            DURABILITY_P * 100.0,
            DURABILITY_RACK_SHOCK * 100.0
        ),
        &[
            "Scenario",
            "Engine",
            "Exact P(loss)",
            "Estimate",
            "95% CI",
            "ESS",
            "MC-equivalent samples",
        ],
    );
    for (label, cell) in [
        ("independent", &independent),
        ("correlated, quorum on one rack", &same_rack),
        ("correlated, quorum across racks", &cross_rack),
    ] {
        table.push_row(vec![
            label.into(),
            cell.engine.to_string(),
            format!("{:.2e}", cell.exact),
            format!("{:.2e}", cell.p_loss),
            format!("[{:.2e}, {:.2e}]", cell.ci_lower, cell.ci_upper),
            cell.ess.map_or("-".into(), |e| format!("{e:.0}")),
            format!(
                "{:.1e} ({:.0}x fewer drawn)",
                cell.mc_equivalent_samples,
                cell.efficiency_factor()
            ),
        ]);
    }
    (
        table,
        CorrelatedDurability {
            independent,
            same_rack,
            cross_rack,
        },
    )
}

/// The result of one simulation-validation cell: analytic prediction vs. empirical rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationCell {
    /// Cluster size.
    pub n: usize,
    /// Per-node fault probability.
    pub p: f64,
    /// Analytic P[safe ∧ live] from the counting engine.
    pub analytic: f64,
    /// Empirical fraction of simulated runs that were safe and live.
    pub empirical: f64,
    /// Number of simulated runs.
    pub trials: usize,
    /// Standardized analytic-vs-empirical disagreement, from the query API's
    /// paired [`prob_consensus::query::ValidationRecord`].
    pub z_score: f64,
}

/// Experiment `sim-validation`: the paper's validation loop as one query — each
/// analytic cell of the Raft sweep requests a paired simulation run
/// ([`Query::validate_with_simulation`]), and the report's per-cell z-scores
/// quantify analytic-vs-empirical agreement.
pub fn sim_validation(
    ns: &[usize],
    p: f64,
    trials: usize,
    seed: u64,
) -> (Table, Vec<ValidationCell>) {
    let mut table = Table::new(
        format!("Simulation validation: Raft, p_u = {}%", p * 100.0),
        &["N", "Analytic S&L", "Empirical S&L", "Trials", "z"],
    );
    let report = AnalysisSession::new()
        .run(
            &Query::new()
                .protocols([ProtocolSpec::Raft])
                .nodes(ns.iter().copied())
                .fault_probs([p])
                .budget(Budget::default().with_seed(seed).with_sim(SimBudget {
                    trials,
                    horizon_millis: 2_500,
                    fault_window_millis: 200,
                    commands: 3,
                    ..SimBudget::default()
                }))
                .validate_with_simulation(),
        )
        .expect("well-formed validation sweep");
    let mut cells = Vec::new();
    for (index, &n) in ns.iter().enumerate() {
        let cell = report.cell(index);
        let validation = cell
            .validation
            .expect("every Raft cell has an executable counterpart");
        table.push_row(vec![
            n.to_string(),
            percent(validation.analytic),
            percent(validation.simulation.safe_and_live.value),
            validation.simulation.trials.to_string(),
            format!("{:+.2}", validation.z_score),
        ]);
        cells.push(ValidationCell {
            n,
            p,
            analytic: validation.analytic,
            empirical: validation.simulation.safe_and_live.value,
            trials: validation.simulation.trials,
            z_score: validation.z_score,
        });
    }
    (table, cells)
}

/// Experiment `native-quorum`: dynamic quorum sizing on fleets of different reliability.
pub fn native_quorum() -> Table {
    let mut table = Table::new(
        "Probability-native: smallest Raft quorums meeting 3 nines (N = 9)",
        &["Fleet", "|Q_per|", "|Q_vc|", "Achieved S&L"],
    );
    for (label, p) in [("p=0.1%", 0.001), ("p=1%", 0.01), ("p=4%", 0.04)] {
        let d = Deployment::uniform_crash(9, p);
        match smallest_raft_quorums(&d, 3.0) {
            Some(sizing) => table.push_row(vec![
                label.to_string(),
                sizing.model.q_per().to_string(),
                sizing.model.q_vc().to_string(),
                percent(sizing.achieved),
            ]),
            None => table.push_row(vec![
                label.to_string(),
                "-".into(),
                "-".into(),
                "target unreachable".into(),
            ]),
        }
    }
    table
}

/// Experiment `native-leader`: reliability-aware vs oblivious leader selection.
pub fn native_leader() -> Table {
    let deployment = Deployment::from_profiles(vec![
        FaultProfile::crash_only(0.08),
        FaultProfile::crash_only(0.08),
        FaultProfile::crash_only(0.04),
        FaultProfile::crash_only(0.01),
        FaultProfile::crash_only(0.01),
    ]);
    let mut table = Table::new(
        "Probability-native: leader selection policies (5-node heterogeneous fleet)",
        &["Policy", "P(leader fails within the window)"],
    );
    for (label, policy) in [
        ("oblivious (fleet average)", LeaderPolicy::Oblivious),
        ("most reliable node", LeaderPolicy::MostReliable),
        ("worst case", LeaderPolicy::WorstCase),
    ] {
        table.push_row(vec![
            label.to_string(),
            format!("{:.3}", leader_failure_probability(&deployment, policy)),
        ]);
    }
    table
}

/// Experiment `native-committee`: running consensus on a reliable committee instead of
/// the whole fleet.
pub fn native_committee() -> Table {
    let mut profiles = vec![FaultProfile::crash_only(0.005); 5];
    profiles.extend(vec![FaultProfile::crash_only(0.08); 10]);
    let deployment = Deployment::from_profiles(profiles);
    let cmp = committee_vs_full_cluster(&deployment, 5, RaftModel::standard);
    let mut table = Table::new(
        "Probability-native: committee of reliable nodes vs full 15-node fleet",
        &["Configuration", "S&L", "Participation"],
    );
    table.push_row(vec![
        "full fleet (15 nodes)".into(),
        cmp.full_cluster.safe_and_live.as_percent(),
        "100%".into(),
    ]);
    table.push_row(vec![
        "committee (5 most reliable)".into(),
        cmp.committee.safe_and_live.as_percent(),
        format!("{:.0}%", cmp.participation_fraction * 100.0),
    ]);
    table
}

/// Experiment `fault-curves`: time-varying guarantees on an aging fleet and the impact of
/// correlated failures.
pub fn fault_curves() -> Table {
    // An aging 5-node fleet on a wear-out Weibull curve.
    let fleet: Fleet = (0..5)
        .map(|i| {
            NodeSpec::with_constant_crash(i, 0.0, HOURS_PER_YEAR)
                .with_crash_curve(Arc::new(WeibullCurve::new(3.0, 70_000.0)))
                .with_age(10_000.0)
        })
        .collect();
    let trajectory = reliability_trajectory(
        &RaftModel::standard(5),
        &fleet,
        HOURS_PER_YEAR / 4.0,
        5.0 * HOURS_PER_YEAR,
        HOURS_PER_YEAR,
    );
    let mut table = Table::new(
        "Fault curves: quarterly S&L of an aging 5-node Raft fleet (wear-out Weibull)",
        &["Years from now", "S&L over the next quarter"],
    );
    for point in &trajectory {
        table.push_row(vec![
            format!("{:.0}", point.at_hours / HOURS_PER_YEAR),
            point.report.safe_and_live.as_percent(),
        ]);
    }
    let summary = summarize(&trajectory, 3.0).expect("non-empty trajectory");
    table.push_row(vec![
        "worst point".into(),
        format!(
            "{} (target held: {})",
            percent(summary.worst_probability),
            summary.target_held
        ),
    ]);
    table
}

/// Cross-check used by `fault-curves`/tests: parallel Monte Carlo agrees with the
/// engine the auto-selector picks (counting, for these models). Pinning the sampling
/// engine is deliberate here — the point is cross-engine agreement.
pub fn monte_carlo_crosscheck(n: usize, p: f64, samples: usize, seed: u64) -> (f64, f64) {
    let deployment = Deployment::uniform_crash(n, p);
    let model = RaftModel::standard(n);
    let analytic = analyze_auto(&model, &deployment, &Budget::default())
        .report
        .safe_and_live
        .probability();
    let mc = monte_carlo_independent_par(&model, &deployment, samples, seed);
    (analytic, mc.safe_and_live.value)
}

/// One wall-clock measurement of an analysis hot path, for the `repro --bench`
/// baseline (`BENCH_analysis.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchMeasurement {
    /// Benchmark id, mirroring the criterion bench names where one exists.
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Iterations measured (after one warm-up iteration).
    pub iters: usize,
}

/// Times `f` for roughly `budget_ms` of wall clock.
///
/// One warm-up iteration calibrates a batch size (~1/50 of the budget per batch), and
/// the deadline is only checked between batches, so the clock reads stay out of the
/// measured mean even for nanosecond-scale `f`.
fn time_one<T>(id: &str, budget_ms: u64, mut f: impl FnMut() -> T) -> BenchMeasurement {
    use std::time::{Duration, Instant};
    let warmup_start = Instant::now();
    std::hint::black_box(f());
    let one = warmup_start.elapsed();
    let batch_budget = Duration::from_millis(budget_ms.max(1)) / 50;
    let batch =
        ((batch_budget.as_nanos().max(1) / one.as_nanos().max(1)) as usize).clamp(1, 1_000_000);

    let deadline = Instant::now() + Duration::from_millis(budget_ms);
    let start = Instant::now();
    let mut iters = 0usize;
    while iters < 3 * batch || Instant::now() < deadline {
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        iters += batch;
    }
    BenchMeasurement {
        id: id.to_string(),
        mean_ns: start.elapsed().as_nanos() as f64 / iters as f64,
        iters,
    }
}

/// Benchmark ids of the sequential / parallel Monte Carlo pair whose ratio is the
/// parallel speedup reported in `BENCH_analysis.json`. The sequential row is the
/// scalar reference kernel on one thread; the parallel row is the production
/// engine — the bit-sliced packed kernel across the persistent pool — so the ratio
/// measures the full engine-level win (kernel × pool).
pub const MC_SEQUENTIAL_ID: &str = "monte-carlo/raft-9-sequential";
/// See [`MC_SEQUENTIAL_ID`].
pub const MC_PARALLEL_ID: &str = "monte-carlo/raft-9-parallel";
/// Benchmark id of the scalar kernel run across the same parallel pool, so the
/// packed kernel's contribution can be separated from the pool's.
pub const MC_SCALAR_PARALLEL_ID: &str = "monte-carlo/raft-9-scalar-parallel";
/// Sample budget of the speedup workload — shared with the criterion bench in
/// `benches/analysis.rs` so the recorded baseline and the bench measure the same thing.
pub const MC_SPEEDUP_SAMPLES: usize = 200_000;
/// Seed of the speedup workload.
pub const MC_SPEEDUP_SEED: u64 = 7;

/// The model/deployment pair of the sequential-vs-parallel speedup workload
/// (9-node Raft at p_u = 8%).
pub fn mc_speedup_workload() -> (RaftModel, Deployment) {
    (RaftModel::standard(9), Deployment::uniform_crash(9, 0.08))
}

/// Benchmark id of the importance-sampling run on the p ≈ 1e-8 workload.
pub const RARE_EVENT_IS_ID: &str = "rare-event/quorum-1e8-importance";
/// Benchmark id of the plain Monte Carlo run on the same workload (same sample
/// count — it measures per-sample cost; at this event probability it will see zero
/// hits, which is exactly the point).
pub const RARE_EVENT_MC_ID: &str = "rare-event/quorum-1e8-naive";
/// Sample budget of the rare-event workload.
pub const RARE_EVENT_SAMPLES: usize = 65_536;
/// Seed of the rare-event workload.
pub const RARE_EVENT_SEED: u64 = 17;

/// The p ≈ 1e-8 rare-event workload: a 16-node deployment at p_u = 1% whose
/// persistence quorum is 4 specific nodes, so P\[loss\] = 0.01⁴ = 1e-8 — one hit
/// per hundred million plain draws.
pub fn rare_event_workload() -> (PersistenceQuorumModel, Deployment) {
    (
        PersistenceQuorumModel::new(16, (0..4).collect()),
        Deployment::uniform_crash(16, 0.01),
    )
}

/// Sample-efficiency of importance sampling on the p ≈ 1e-8 workload: how many
/// plain Monte Carlo samples an equal-width 95% CI would cost, divided by the
/// samples actually drawn. Tracked in `BENCH_analysis.json` across PRs; the
/// acceptance floor is 100x.
pub fn rare_event_sample_efficiency() -> f64 {
    let (model, deployment) = rare_event_workload();
    let budget = Budget::default()
        .with_samples(RARE_EVENT_SAMPLES)
        .with_seed(RARE_EVENT_SEED);
    let outcome = prob_consensus::rare_event::ImportanceSamplingEngine.run(
        &model,
        Scenario::Independent(&deployment),
        &budget,
    );
    let report = outcome.rare_event.expect("importance sampling ran");
    let p_loss = 1.0 - report.safe.value;
    mc_equivalent_samples(p_loss, report.safe.half_width()) / report.samples as f64
}

/// Benchmark id of the simulation engine's trace-throughput workload: one batch
/// of discrete-event trials of a 5-node Raft cell. `repro --bench` divides the
/// batch's wall clock by [`SIM_THROUGHPUT_TRIALS`] and records the result as
/// `sim_traces_per_sec` in `BENCH_analysis.json`.
pub const SIM_THROUGHPUT_ID: &str = "sim-throughput/raft-5";
/// Trials per measured batch of the sim-throughput workload.
pub const SIM_THROUGHPUT_TRIALS: usize = 32;
/// Seed of the sim-throughput workload.
pub const SIM_THROUGHPUT_SEED: u64 = 23;

/// One batch of the sim-throughput workload: 5-node Raft, p_u = 5%, default
/// horizon/workload, [`SIM_THROUGHPUT_TRIALS`] deterministic traces fanned out
/// across the pool. Shared by `repro --bench` and the `sim-throughput` criterion
/// group so both measure the same thing.
pub fn sim_throughput_batch() -> prob_consensus::simulation::SimulationReport {
    let model = RaftModel::standard(5);
    let deployment = Deployment::uniform_crash(5, 0.05);
    let budget = Budget::default()
        .with_seed(SIM_THROUGHPUT_SEED)
        .with_sim_trials(SIM_THROUGHPUT_TRIALS);
    prob_consensus::simulation::simulate_reliability(
        &model,
        Scenario::Independent(&deployment),
        &budget,
    )
}

/// Benchmark id of the gray-failure workload: a batch of 5-node Raft traces
/// under [`FaultEnvironment::GrayPrimary`], where the environment schedule
/// turns the pinned initial leader slow-but-alive mid-window. `repro --bench`
/// divides the batch's wall clock by [`SIM_FAULTS_TRIALS`] and records the
/// result as `gray_failure_traces_per_sec` in `BENCH_analysis.json`.
pub const GRAY_FAULT_ID: &str = "sim-faults/gray-primary-raft-5";
/// Benchmark id of the healing-partition workload: a batch of 4-node PBFT
/// traces under [`FaultEnvironment::PartitionHeal`] — a half/half partition
/// opens mid-window and heals before the horizon.
pub const HEAL_FAULT_ID: &str = "sim-faults/partition-heal-pbft-4";
/// Trials per measured batch of the sim-faults workloads.
pub const SIM_FAULTS_TRIALS: usize = 16;
/// Seed of the sim-faults workloads.
pub const SIM_FAULTS_SEED: u64 = 31;
/// Seed of the [`divergence_smoke`] query. The gray-primary cell at this seed
/// is a known-divergent cell: the pinned leader goes slow-but-alive, the
/// cluster's liveness collapses empirically, and the crash/Byzantine-only
/// analytic model keeps predicting near-perfect reliability.
pub const DIVERGENCE_SMOKE_SEED: u64 = 13;

/// One batch of the gray-failure workload: 5-node Raft, p_u = 5%, with the
/// environment schedule slowing the initial leader by
/// [`prob_consensus::simulation::GRAY_SLOW_FACTOR`] mid-window. Shared by
/// `repro --bench` and the `sim-faults` criterion group so both measure the
/// same thing.
pub fn gray_primary_batch() -> prob_consensus::simulation::SimulationReport {
    let model = RaftModel::standard(5);
    let deployment = Deployment::uniform_crash(5, 0.05);
    let budget = Budget::default()
        .with_seed(SIM_FAULTS_SEED)
        .with_sim_trials(SIM_FAULTS_TRIALS)
        .with_fault_environment(FaultEnvironment::GrayPrimary);
    prob_consensus::simulation::simulate_reliability(
        &model,
        Scenario::Independent(&deployment),
        &budget,
    )
}

/// One batch of the healing-partition workload: 4-node PBFT, p_u = 5%, with a
/// partition that opens mid-window and heals before the horizon in every trial.
pub fn partition_heal_batch() -> prob_consensus::simulation::SimulationReport {
    let model = PbftModel::standard(4);
    let deployment = Deployment::uniform_crash(4, 0.05);
    let budget = Budget::default()
        .with_seed(SIM_FAULTS_SEED)
        .with_sim_trials(SIM_FAULTS_TRIALS)
        .with_fault_environment(FaultEnvironment::PartitionHeal);
    prob_consensus::simulation::simulate_reliability(
        &model,
        Scenario::Independent(&deployment),
        &budget,
    )
}

/// The divergence smoke check behind the `divergence_smoke_divergent_cells` row
/// of `BENCH_analysis.json`: one paired analytic-vs-simulation query of a
/// 5-node Raft cell under a clean and a gray-primary environment. The analytic
/// model cannot see gray failures, so the gray cell's empirical liveness falls
/// more than [`prob_consensus::query::DIVERGENCE_Z`] standard errors below the
/// analytic prediction and is flagged as a first-class divergence finding.
/// Returns the number of flagged cells (the committed baseline asserts ≥ 1).
pub fn divergence_smoke() -> usize {
    let report =
        AnalysisSession::new()
            .run(
                &Query::new()
                    .protocols([ProtocolSpec::Raft])
                    .nodes([5])
                    .fault_probs([0.01])
                    .fault_environments([FaultEnvironment::Clean, FaultEnvironment::GrayPrimary])
                    .budget(Budget::default().with_seed(DIVERGENCE_SMOKE_SEED).with_sim(
                        SimBudget {
                            trials: 32,
                            horizon_millis: 2_000,
                            fault_window_millis: 150,
                            commands: 2,
                            ..SimBudget::default()
                        },
                    ))
                    .validate_with_simulation(),
            )
            .expect("well-formed divergence smoke query");
    report.divergent_cells().len()
}

/// Benchmark id of the planned-batch sweep (one [`AnalysisSession::plan`] +
/// [`execute`](prob_consensus::query::QueryPlan::execute) over the whole grid).
pub const SWEEP_PLANNED_ID: &str = "sweep/planned-batch";
/// Benchmark id of the naive per-cell loop over the same grid (one
/// `analyze_scenario` call per cell, each re-running the selector pilot and
/// recompiling the packed kernel).
pub const SWEEP_NAIVE_ID: &str = "sweep/naive-per-cell";
/// Cluster size of the sweep-amortization workload.
pub const SWEEP_NODES: usize = 25;
/// Per-node crash probability of the workload.
pub const SWEEP_P: f64 = 0.05;
/// Whole-cluster crash-shock probability: makes the scenario correlated, so the
/// exact engines cannot take it and every cell lands on the packed Monte Carlo
/// kernel — the packed-kernel-eligible subset the amortization headline is about.
pub const SWEEP_SHOCK: f64 = 0.02;
/// Seed of the sweep workload.
pub const SWEEP_SEED: u64 = 41;
/// The convergence axis: per-cell sample budgets of the sweep (CI width vs. spend).
pub const SWEEP_SAMPLE_AXIS: [usize; 5] = [1_000, 2_000, 4_000, 8_000, 16_000];

/// The sweep-amortization query: a correlated Raft scenario swept over the sample
/// budget. All five cells share one (model, scenario) signature, so the planned
/// batch runs the rare-event selector pilot and compiles the packed kernel once,
/// where the naive loop pays for both per cell.
pub fn sweep_query() -> Query {
    Query::new()
        .protocols([ProtocolSpec::Raft])
        .nodes([SWEEP_NODES])
        .fault_probs([SWEEP_P])
        .correlations([CorrelationSpec::ClusterShock {
            probability: SWEEP_SHOCK,
        }])
        .samples_sweep(SWEEP_SAMPLE_AXIS)
        .budget(Budget::default().with_seed(SWEEP_SEED))
}

/// The correlated failure model of the sweep workload (what the naive loop passes
/// to `analyze_scenario` per cell).
pub fn sweep_failure_model() -> CorrelationModel {
    CorrelationModel::independent(vec![FaultProfile::crash_only(SWEEP_P); SWEEP_NODES]).with_group(
        CorrelationGroup::crash_shock((0..SWEEP_NODES).collect(), SWEEP_SHOCK),
    )
}

/// One planned-batch run of the sweep, on a fresh session (so the measured
/// amortization is within one batch, not across benchmark iterations).
pub fn sweep_planned_batch() -> AnalysisReport {
    AnalysisSession::new()
        .run(&sweep_query())
        .expect("well-formed sweep query")
}

/// The naive per-cell loop over the same grid: one front-door call per cell, each
/// re-running engine selection (selector pilot included) and kernel compilation.
pub fn sweep_naive_loop() -> Vec<AnalysisOutcome> {
    let model = RaftModel::standard(SWEEP_NODES);
    let failure_model = sweep_failure_model();
    SWEEP_SAMPLE_AXIS
        .iter()
        .map(|&samples| {
            analyze_scenario(
                &model,
                Scenario::Correlated(&failure_model),
                &Budget::default()
                    .with_seed(SWEEP_SEED)
                    .with_samples(samples),
            )
            .expect("well-formed sweep cell")
        })
        .collect()
}

/// Benchmark id of the mixed-workload sweep: exact counting cells and packed
/// Monte Carlo cells in one plan, executed through the work-stealing scheduler
/// ([`prob_consensus::query::QueryPlan::execute`]). `repro --bench` records its
/// wall clock as `sweep_wall_clock_ms` in `BENCH_analysis.json`.
pub const SWEEP_MIXED_ID: &str = "sweep/mixed-workload";
/// Benchmark id of the cell-at-a-time front-door loop over the same mixed grid;
/// the [`SWEEP_MIXED_ID`] / naive ratio is recorded as `sweep_mixed_speedup`.
pub const SWEEP_MIXED_NAIVE_ID: &str = "sweep/mixed-naive-per-cell";

/// The mixed sweep query: the independent correlation axis lands on the exact
/// counting engine, the cluster-shock axis on the packed Monte Carlo kernel — the
/// sweep shape the scheduler's cost-ordered decomposition exists for (exact long
/// poles interleaved with individually stealable sample chunks).
pub fn sweep_mixed_query() -> Query {
    Query::new()
        .protocols([ProtocolSpec::Raft])
        .nodes([SWEEP_NODES])
        .fault_probs([SWEEP_P])
        .correlations([
            CorrelationSpec::Independent,
            CorrelationSpec::ClusterShock {
                probability: SWEEP_SHOCK,
            },
        ])
        .samples_sweep(SWEEP_SAMPLE_AXIS)
        .budget(Budget::default().with_seed(SWEEP_SEED))
}

/// One scheduled run of the mixed sweep, on a fresh session.
pub fn sweep_mixed_batch() -> AnalysisReport {
    AnalysisSession::new()
        .run(&sweep_mixed_query())
        .expect("well-formed mixed sweep query")
}

/// The cell-at-a-time reference over the same mixed grid, in the plan's cell
/// order (correlation variants outer, sample budgets inner).
pub fn sweep_mixed_naive_loop() -> Vec<AnalysisOutcome> {
    let model = RaftModel::standard(SWEEP_NODES);
    let deployment = Deployment::uniform_crash(SWEEP_NODES, SWEEP_P);
    let failure_model = sweep_failure_model();
    let mut out = Vec::with_capacity(2 * SWEEP_SAMPLE_AXIS.len());
    for &samples in &SWEEP_SAMPLE_AXIS {
        let budget = Budget::default()
            .with_seed(SWEEP_SEED)
            .with_samples(samples);
        out.push(analyze_auto(&model, &deployment, &budget));
    }
    for &samples in &SWEEP_SAMPLE_AXIS {
        let budget = Budget::default()
            .with_seed(SWEEP_SEED)
            .with_samples(samples);
        out.push(
            analyze_scenario(&model, Scenario::Correlated(&failure_model), &budget)
                .expect("well-formed mixed sweep cell"),
        );
    }
    out
}

/// Benchmark id of one full NDJSON service exchange (parse → plan → execute →
/// stream) against a *fresh* session: every request pays scenario conversion,
/// the selector pilot, packed-kernel compilation and IS proposal learning.
pub const SERVER_QUERY_COLD_ID: &str = "server-throughput/query-cold";
/// The same exchange against a long-lived server whose session cache is warm —
/// the dominant service workload (repeated and overlapping operator queries).
/// `repro --bench` records the warm rate as `server_queries_per_sec` and the
/// cold/warm ratio as `server_warm_cache_speedup` in `BENCH_analysis.json`.
pub const SERVER_QUERY_WARM_ID: &str = "server-throughput/query-warm";

/// The request line of the server-throughput workload: a mixed query touching
/// all three engine families the session cache amortizes — an exact counting
/// cell (independent axis), a packed Monte Carlo cell (cluster-shock axis) and
/// an importance-sampling persistence-quorum cell — at a deliberately small
/// sample budget, so per-request setup dominates and the cache either pays or
/// it does not.
pub const SERVER_BENCH_REQUEST: &str = concat!(
    "{\"id\":\"bench\",\"op\":\"query\",\"query\":{",
    "\"protocols\":[\"raft\"],\"nodes\":[25],\"fault_probs\":[0.05],",
    "\"correlations\":[\"independent\",{\"cluster_shock\":{\"probability\":0.02}}],",
    "\"samples\":500,\"seed\":43,",
    "\"cells\":[{\"label\":\"pq\",",
    "\"model\":{\"persistence_quorum\":{\"quorum\":[0,1,2,3]}},",
    "\"deployment\":{\"uniform_crash\":{\"n\":24,\"p\":0.01}}}]}}\n"
);

/// One cold exchange: a fresh server (empty session cache) serves
/// [`SERVER_BENCH_REQUEST`] end to end. Returns the NDJSON output.
pub fn server_query_cold() -> String {
    let server = Arc::new(repro_server::Server::new());
    repro_server::run_exchange(&server, SERVER_BENCH_REQUEST)
}

/// One warm exchange: `server` (prime it with one unmeasured call) serves the
/// same request out of its session cache.
pub fn server_query_warm(server: &Arc<repro_server::Server>) -> String {
    repro_server::run_exchange(server, SERVER_BENCH_REQUEST)
}

/// Benchmark id of the second-order posterior sweep: one Raft cell re-analyzed
/// under [`EPISTEMIC_DRAWS`] deterministic posterior parameter draws through the
/// work-stealing scheduler. `repro --bench` derives `posterior_draws_per_sec`
/// from this row in `BENCH_analysis.json`.
pub const EPISTEMIC_SWEEP_ID: &str = "epistemic/posterior-sweep-raft-5";
/// Cluster size of the epistemic workload. Small on purpose: at five nodes the
/// per-node fault probability drives the safe-and-live answer (three crashes
/// break the quorum at realistic rates), so the posterior draws actually spread
/// the estimate — at [`SWEEP_NODES`] the correlated shock dominates and every
/// draw would return the same number.
pub const EPISTEMIC_NODES: usize = 5;
/// Posterior draws per cell of the epistemic workload.
pub const EPISTEMIC_DRAWS: usize = 64;
/// Beta posterior alpha of the workload: 8 observed failures under a Jeffreys
/// prior (8 + 0.5).
pub const EPISTEMIC_ALPHA: f64 = 8.5;
/// Beta posterior beta of the workload: 191 survivals under a Jeffreys prior,
/// so the posterior mean sits near the [`SWEEP_P`] point estimate.
pub const EPISTEMIC_BETA: f64 = 191.5;
/// Seed of the epistemic workload.
pub const EPISTEMIC_SEED: u64 = 47;
/// Per-draw sample budget of the epistemic workload: small enough that the
/// benchmark prices the per-draw scheduling overhead, not raw kernel throughput.
pub const EPISTEMIC_SAMPLES: usize = 4_000;

/// The epistemic query: a correlated five-node Raft cell re-run under a
/// fleet-telemetry posterior (Beta(8.5, 191.5), mean ≈ [`SWEEP_P`]). Every
/// posterior draw is an independently scheduled packed Monte Carlo run, so this
/// workload measures the full second-order loop: draw planning, per-draw cache
/// keying, scheduling and the epistemic/aleatoric interval split.
pub fn epistemic_query() -> Query {
    Query::new()
        .protocols([ProtocolSpec::Raft])
        .nodes([EPISTEMIC_NODES])
        .fault_probs([SWEEP_P])
        .correlations([CorrelationSpec::ClusterShock {
            probability: SWEEP_SHOCK,
        }])
        .budget(
            Budget::default()
                .with_seed(EPISTEMIC_SEED)
                .with_samples(EPISTEMIC_SAMPLES),
        )
        .posterior(EPISTEMIC_DRAWS, EPISTEMIC_ALPHA, EPISTEMIC_BETA)
}

/// One scheduled run of the epistemic workload, on a fresh session.
pub fn epistemic_sweep_batch() -> AnalysisReport {
    AnalysisSession::new()
        .run(&epistemic_query())
        .expect("well-formed epistemic query")
}

/// The epistemic credible-interval width of the workload's single cell — the
/// `epistemic_interval_width` baseline row. Deterministic (fixed seed, fixed
/// posterior), so the committed number is reproducible anywhere.
pub fn epistemic_interval_width() -> f64 {
    let report = epistemic_sweep_batch();
    report.cells()[0]
        .epistemic
        .as_ref()
        .expect("the epistemic workload always carries a posterior report")
        .epistemic_width()
}

/// Benchmark id of the deployment-optimizer search: the default instance
/// catalogue crossed with Raft cluster sizes 3–9 — [`OPTIMIZER_CANDIDATES`]
/// counting-exact candidates screened, ranked and frontier-extracted as one
/// three-tier search on a fresh session. `repro --bench` derives
/// `frontier_candidates_per_sec` from this row in `BENCH_analysis.json`.
pub const OPTIMIZER_BENCH_ID: &str = "optimizer/catalogue-raft-grid";
/// Cluster sizes of the optimizer workload.
pub const OPTIMIZER_NODES: [usize; 4] = [3, 5, 7, 9];
/// Candidates in the optimizer workload grid: the three catalogue instance
/// types × [`OPTIMIZER_NODES`].
pub const OPTIMIZER_CANDIDATES: usize = 12;
/// Reliability target of the optimizer workload, in nines.
pub const OPTIMIZER_TARGET_NINES: f64 = 3.0;
/// Seed of the optimizer workloads.
pub const OPTIMIZER_SEED: u64 = 2026;

/// The optimizer workload space: every [`default_catalogue`] instance type at
/// every [`OPTIMIZER_NODES`] Raft cluster size. All candidates resolve exactly
/// through the counting engine, so the row prices the search machinery (grid
/// expansion, one planned sweep, ranking, frontier extraction), not sampling.
pub fn optimizer_space() -> DeploymentSpace {
    DeploymentSpace {
        instances: default_catalogue()
            .iter()
            .map(NodeType::from_instance)
            .collect(),
        nodes: OPTIMIZER_NODES.to_vec(),
        domains: None,
        placements: Vec::new(),
        target: TargetSpec::Protocol(ProtocolSpec::Raft),
    }
}

/// The optimizer workload config: small tier budgets (exact cells ignore them)
/// and the fixed [`OPTIMIZER_SEED`].
pub fn optimizer_config() -> OptimizerConfig {
    OptimizerConfig::new(OPTIMIZER_TARGET_NINES)
        .with_screen_samples(4_000)
        .with_refine_samples(16_000)
        .with_seed(OPTIMIZER_SEED)
}

/// One full optimizer search on a fresh session — the measured unit behind
/// [`OPTIMIZER_BENCH_ID`].
pub fn optimizer_batch() -> OptimizeReport {
    optimize(
        &AnalysisSession::new(),
        &optimizer_space(),
        &optimizer_config(),
    )
    .expect("the optimizer workload space is well-formed")
}

/// The Pareto-frontier size of the optimizer workload — the
/// `optimizer_frontier_size` baseline row. Deterministic (counting-exact
/// candidates), so the committed number is reproducible anywhere; the baseline
/// test asserts the floor of 1 — an empty frontier would mean the search lost
/// the feasible region.
pub fn optimizer_frontier_size() -> usize {
    optimizer_batch().frontier.len()
}

/// Experiment `optimize-durability`: the `claim-durability-correlated`
/// comparison generalized into a search. 100 spot nodes across 10 racks with
/// correlated rack shocks, quorum placement as a search axis; the optimizer
/// must rediscover cross-rack placement as the only feasible deployment at
/// eight nines, refining the deep-tail candidate with importance sampling.
pub fn optimize_durability() -> (Table, OptimizeReport) {
    let space = DeploymentSpace {
        instances: vec![NodeType::new("spot", 0.10, 0.10)],
        nodes: vec![100],
        domains: Some(FailureDomains {
            racks: 10,
            shock_probability: 0.01,
        }),
        placements: vec![Placement::SameRack, Placement::CrossRack],
        target: TargetSpec::PersistenceQuorum { quorum_size: 10 },
    };
    let config = OptimizerConfig::new(8.0)
        .with_screen_samples(20_000)
        .with_refine_samples(80_000)
        .with_seed(OPTIMIZER_SEED);
    let report = optimize(&AnalysisSession::new(), &space, &config)
        .expect("the durability search space is well-formed");
    (report.to_table(), report)
}

/// Benchmark ids of the packed kernel at pinned pass widths — 1, 4 and 8 `u64`
/// words (64, 256 and 512 lanes per pass) — on the [`mc_speedup_workload`]. The
/// width-8 row is the production configuration ([`PACKED_WIDTH_PRODUCTION_ID`])
/// behind the absolute `packed_samples_per_sec` baseline in `BENCH_analysis.json`.
pub const PACKED_WIDTH_IDS: [(&str, usize); 3] = [
    ("packed-width/w1", 1),
    ("packed-width/w4", 4),
    ("packed-width/w8", 8),
];
/// See [`PACKED_WIDTH_IDS`].
pub const PACKED_WIDTH_PRODUCTION_ID: &str = "packed-width/w8";

/// Measures the sequential-scalar vs. parallel-engine speedup on the raft-9
/// workload at a reduced sample count — the quick version of the
/// [`MC_SEQUENTIAL_ID`] / [`MC_PARALLEL_ID`] ratio, cheap enough for a CI test.
///
/// The parallel engine runs the packed kernel, so the ratio is well above 1 even on
/// a single-core runner; CI asserts a loose floor (> 0.9) to stay robust to noisy
/// shared runners, with the real measured number committed in `BENCH_analysis.json`.
pub fn mc_speedup_ratio(samples: usize, budget_ms: u64) -> f64 {
    let (model, deployment) = mc_speedup_workload();
    let seq = time_one("speedup-probe-sequential", budget_ms, || {
        let mut rng = StdRng::seed_from_u64(MC_SPEEDUP_SEED);
        prob_consensus::montecarlo::monte_carlo_independent(&model, &deployment, samples, &mut rng)
    });
    let par = time_one("speedup-probe-parallel", budget_ms, || {
        monte_carlo_independent_par(&model, &deployment, samples, MC_SPEEDUP_SEED)
    });
    seq.mean_ns / par.mean_ns
}

/// The analysis-engine baseline suite behind `repro --bench`: the three engines at
/// representative sizes, auto-selection overhead, and sequential vs. parallel Monte
/// Carlo (whose ratio is the parallel speedup on this machine).
pub fn analysis_benchmarks(budget_ms: u64) -> Vec<BenchMeasurement> {
    let budget = Budget::default();
    let mut out = Vec::new();

    let d9 = Deployment::uniform_crash(9, 0.02);
    let m9 = RaftModel::standard(9);
    out.push(time_one("counting/raft-9", budget_ms, || {
        analyze_auto(&m9, &d9, &budget)
    }));
    let d100 = Deployment::uniform_crash(100, 0.02);
    let m100 = RaftModel::standard(100);
    out.push(time_one("counting/raft-100", budget_ms, || {
        analyze_auto(&m100, &d100, &budget)
    }));

    let d13 = Deployment::uniform_crash(13, 0.02);
    let m13 = RaftModel::standard(13);
    out.push(time_one("enumeration/raft-13", budget_ms, || {
        prob_consensus::analyzer::analyze_exact(&m13, &d13)
    }));

    let (m_mc, d_mc) = mc_speedup_workload();
    let fm_mc = CorrelationModel::independent(d_mc.profiles().to_vec());
    out.push(time_one(MC_SEQUENTIAL_ID, budget_ms, || {
        let mut rng = StdRng::seed_from_u64(MC_SPEEDUP_SEED);
        prob_consensus::montecarlo::monte_carlo_independent(
            &m_mc,
            &d_mc,
            MC_SPEEDUP_SAMPLES,
            &mut rng,
        )
    }));
    out.push(time_one(MC_SCALAR_PARALLEL_ID, budget_ms, || {
        prob_consensus::montecarlo::monte_carlo_reliability_par_kernel(
            &m_mc,
            &fm_mc,
            MC_SPEEDUP_SAMPLES,
            MC_SPEEDUP_SEED,
            McKernel::Scalar,
        )
    }));
    out.push(time_one(MC_PARALLEL_ID, budget_ms, || {
        monte_carlo_independent_par(&m_mc, &d_mc, MC_SPEEDUP_SAMPLES, MC_SPEEDUP_SEED)
    }));

    // The packed kernel at pinned pass widths (same workload and seed as the
    // parallel row; reports are bit-identical at every width). The width-8 row is
    // the production configuration behind the absolute `packed_samples_per_sec`
    // baseline.
    for (id, lane_words) in PACKED_WIDTH_IDS {
        out.push(time_one(id, budget_ms, || {
            prob_consensus::montecarlo::monte_carlo_reliability_par_kernel_lanes(
                &m_mc,
                &fm_mc,
                MC_SPEEDUP_SAMPLES,
                MC_SPEEDUP_SEED,
                McKernel::Packed,
                lane_words,
            )
        }));
    }

    // The rare-event pair: tilted vs. naive sampling at the same sample count. The
    // wall-clock ratio is the *overhead* of weighting (adaptive pilot included); the
    // ≥100x win is in samples needed, tracked by `rare_event_sample_efficiency`.
    let (m_re, d_re) = rare_event_workload();
    let re_budget = Budget::default()
        .with_samples(RARE_EVENT_SAMPLES)
        .with_seed(RARE_EVENT_SEED);
    out.push(time_one(RARE_EVENT_IS_ID, budget_ms, || {
        prob_consensus::rare_event::ImportanceSamplingEngine.run(
            &m_re,
            Scenario::Independent(&d_re),
            &re_budget,
        )
    }));
    out.push(time_one(RARE_EVENT_MC_ID, budget_ms, || {
        monte_carlo_independent_par(&m_re, &d_re, RARE_EVENT_SAMPLES, RARE_EVENT_SEED)
    }));

    // The sweep-amortization pair: the same grid of cells, planned-batch vs.
    // naive per-cell. Their ratio is `sweep_amortization_speedup`.
    out.push(time_one(SWEEP_NAIVE_ID, budget_ms, sweep_naive_loop));
    out.push(time_one(SWEEP_PLANNED_ID, budget_ms, sweep_planned_batch));

    // The mixed-workload pair: exact counting cells and packed Monte Carlo cells
    // in one grid, scheduled batch vs. cell-at-a-time loop. The batch row is the
    // `sweep_wall_clock_ms` baseline; the ratio is `sweep_mixed_speedup`.
    out.push(time_one(
        SWEEP_MIXED_NAIVE_ID,
        budget_ms,
        sweep_mixed_naive_loop,
    ));
    out.push(time_one(SWEEP_MIXED_ID, budget_ms, sweep_mixed_batch));

    // The simulation engine's trace throughput (per-batch wall clock over
    // SIM_THROUGHPUT_TRIALS traces → `sim_traces_per_sec`).
    out.push(time_one(SIM_THROUGHPUT_ID, budget_ms, sim_throughput_batch));

    // The adversarial fault environments: a gray (slow-but-alive) primary and
    // a healing partition, per-batch wall clock over SIM_FAULTS_TRIALS traces
    // → `gray_failure_traces_per_sec`.
    out.push(time_one(GRAY_FAULT_ID, budget_ms, gray_primary_batch));
    out.push(time_one(HEAL_FAULT_ID, budget_ms, partition_heal_batch));

    // The service pair: one full NDJSON exchange against a fresh server (every
    // request repeats setup) vs. a long-lived server with a warm session cache.
    // The warm row is the `server_queries_per_sec` baseline; the ratio is
    // `server_warm_cache_speedup`.
    out.push(time_one(SERVER_QUERY_COLD_ID, budget_ms, server_query_cold));
    let warm_server = Arc::new(repro_server::Server::new());
    server_query_warm(&warm_server);
    out.push(time_one(SERVER_QUERY_WARM_ID, budget_ms, || {
        server_query_warm(&warm_server)
    }));

    // The second-order posterior sweep: 64 deterministic posterior draws through
    // the scheduler on one correlated cell. The row prices the whole epistemic
    // loop and backs the `posterior_draws_per_sec` baseline.
    out.push(time_one(
        EPISTEMIC_SWEEP_ID,
        budget_ms,
        epistemic_sweep_batch,
    ));

    // The deployment-optimizer search: twelve counting-exact candidates
    // screened, ranked and frontier-extracted per iteration. The row backs the
    // `frontier_candidates_per_sec` baseline.
    out.push(time_one(OPTIMIZER_BENCH_ID, budget_ms, optimizer_batch));
    out
}

/// Renders measurements as the `BENCH_analysis.json` baseline document.
/// `rare_event_efficiency` is the [`rare_event_sample_efficiency`] number,
/// `divergence_smoke_cells` the [`divergence_smoke`] count, `epistemic_width`
/// the [`epistemic_interval_width`] number and `optimizer_frontier` the
/// [`optimizer_frontier_size`] count, each computed once by the caller (none
/// is a timing measurement, so they do not belong inside serialization and are
/// not bounded by the bench time budget).
pub fn benchmarks_to_json(
    measurements: &[BenchMeasurement],
    rare_event_efficiency: f64,
    divergence_smoke_cells: usize,
    epistemic_width: f64,
    optimizer_frontier: usize,
) -> String {
    let threads = rayon::current_num_threads();
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    let seq = measurements.iter().find(|m| m.id == MC_SEQUENTIAL_ID);
    let par = measurements.iter().find(|m| m.id == MC_PARALLEL_ID);
    let (seq, par) = (
        seq.expect("baseline suite always measures the sequential MC path"),
        par.expect("baseline suite always measures the parallel MC path"),
    );
    json.push_str(&format!(
        "  \"monte_carlo_parallel_speedup\": {:.3},\n",
        seq.mean_ns / par.mean_ns
    ));
    json.push_str(&format!(
        "  \"monte_carlo_samples_per_sec\": {:.3e},\n",
        MC_SPEEDUP_SAMPLES as f64 * 1e9 / par.mean_ns
    ));
    if let Some(scalar_par) = measurements.iter().find(|m| m.id == MC_SCALAR_PARALLEL_ID) {
        json.push_str(&format!(
            "  \"packed_kernel_speedup\": {:.3},\n",
            scalar_par.mean_ns / par.mean_ns
        ));
    }
    if let Some(packed8) = measurements
        .iter()
        .find(|m| m.id == PACKED_WIDTH_PRODUCTION_ID)
    {
        // Absolute throughput of the production packed configuration (8-word
        // passes, SIMD compare where the host supports it).
        json.push_str(&format!(
            "  \"packed_samples_per_sec\": {:.3e},\n",
            MC_SPEEDUP_SAMPLES as f64 * 1e9 / packed8.mean_ns
        ));
    }
    json.push_str(&format!(
        "  \"rare_event_sample_efficiency\": {rare_event_efficiency:.1},\n"
    ));
    if let Some(sim) = measurements.iter().find(|m| m.id == SIM_THROUGHPUT_ID) {
        // Discrete-event traces per second of the 5-node Raft validation cell —
        // the budget currency of the cross-validation mode (a paired cell costs
        // `trials / sim_traces_per_sec` seconds).
        json.push_str(&format!(
            "  \"sim_traces_per_sec\": {:.3e},\n",
            SIM_THROUGHPUT_TRIALS as f64 * 1e9 / sim.mean_ns
        ));
    }
    if let Some(gray) = measurements.iter().find(|m| m.id == GRAY_FAULT_ID) {
        // Traces per second under the gray-primary environment: every trial
        // carries a scheduled slow-down event and a pinned leader, so this row
        // prices the adversarial-environment validation cells relative to
        // `sim_traces_per_sec`.
        json.push_str(&format!(
            "  \"gray_failure_traces_per_sec\": {:.3e},\n",
            SIM_FAULTS_TRIALS as f64 * 1e9 / gray.mean_ns
        ));
    }
    // The divergence smoke row: how many cells of the [`divergence_smoke`]
    // query were flagged as analytic-vs-empirical divergences. The baseline
    // test asserts the floor of 1 — the gray-primary cell must always be
    // caught, or the cross-validation mode has gone blind.
    json.push_str(&format!(
        "  \"divergence_smoke_divergent_cells\": {divergence_smoke_cells},\n"
    ));
    if let (Some(naive), Some(planned)) = (
        measurements.iter().find(|m| m.id == SWEEP_NAIVE_ID),
        measurements.iter().find(|m| m.id == SWEEP_PLANNED_ID),
    ) {
        // Amortized per-cell speedup of the planned batch over the naive loop on
        // the packed-kernel-eligible sweep (both sides run the same cells, so the
        // wall-clock ratio is the per-cell ratio).
        json.push_str(&format!(
            "  \"sweep_amortization_speedup\": {:.3},\n",
            naive.mean_ns / planned.mean_ns
        ));
        json.push_str(&format!(
            "  \"sweep_cells\": {},\n",
            SWEEP_SAMPLE_AXIS.len()
        ));
    }
    if let (Some(naive), Some(mixed)) = (
        measurements.iter().find(|m| m.id == SWEEP_MIXED_NAIVE_ID),
        measurements.iter().find(|m| m.id == SWEEP_MIXED_ID),
    ) {
        // The mixed exact + Monte Carlo sweep through the work-stealing
        // scheduler: absolute wall clock per batch, and the speedup over running
        // the same cells one at a time (same machine, same run, so the ratio
        // stays meaningful wherever the baseline is regenerated).
        json.push_str(&format!(
            "  \"sweep_wall_clock_ms\": {:.3},\n",
            mixed.mean_ns / 1e6
        ));
        json.push_str(&format!(
            "  \"sweep_mixed_speedup\": {:.3},\n",
            naive.mean_ns / mixed.mean_ns
        ));
    }
    if let Some(ep) = measurements.iter().find(|m| m.id == EPISTEMIC_SWEEP_ID) {
        // Posterior draws resolved per second on the second-order workload:
        // the throughput currency of epistemic mode (a K-draw cell costs
        // `K / posterior_draws_per_sec` seconds on top of its first-order run).
        json.push_str(&format!(
            "  \"posterior_draws_per_sec\": {:.3e},\n",
            EPISTEMIC_DRAWS as f64 * 1e9 / ep.mean_ns
        ));
    }
    // The epistemic interval-width row: the 90% credible interval of the
    // safe-and-live probability induced by the Beta(8.5, 191.5) telemetry
    // posterior on the workload cell. Deterministic, so the baseline test can
    // assert the floor (> 0 — second-order mode must actually widen the answer).
    json.push_str(&format!(
        "  \"epistemic_interval_width\": {epistemic_width:.6},\n"
    ));
    if let Some(opt) = measurements.iter().find(|m| m.id == OPTIMIZER_BENCH_ID) {
        // Candidates screened-and-ranked per second by the deployment
        // optimizer on the counting-exact catalogue grid: the budget currency
        // of a search (a grid of C exact candidates costs roughly
        // `C / frontier_candidates_per_sec` seconds before any sampling tier).
        json.push_str(&format!(
            "  \"frontier_candidates_per_sec\": {:.3e},\n",
            OPTIMIZER_CANDIDATES as f64 * 1e9 / opt.mean_ns
        ));
    }
    // The optimizer frontier-size row: how many Pareto points the workload
    // search emits. Deterministic (exact candidates, fixed grid); the baseline
    // test asserts the floor of 1 — an empty frontier would mean the search
    // lost the feasible region entirely.
    json.push_str(&format!(
        "  \"optimizer_frontier_size\": {optimizer_frontier},\n"
    ));
    if let (Some(cold), Some(warm)) = (
        measurements.iter().find(|m| m.id == SERVER_QUERY_COLD_ID),
        measurements.iter().find(|m| m.id == SERVER_QUERY_WARM_ID),
    ) {
        // Sustained request rate of a long-lived `repro serve` process on the
        // mixed service workload, and the payoff of the shared session cache
        // over a fresh session per request.
        json.push_str(&format!(
            "  \"server_queries_per_sec\": {:.3e},\n",
            1e9 / warm.mean_ns
        ));
        json.push_str(&format!(
            "  \"server_warm_cache_speedup\": {:.3},\n",
            cold.mean_ns / warm.mean_ns
        ));
    }
    json.push_str("  \"benchmarks\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let comma = if i + 1 == measurements.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"iters\": {}}}{comma}\n",
            m.id, m.mean_ns, m.iters
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

/// All experiment ids understood by the `repro` binary, in DESIGN.md order.
pub const EXPERIMENT_IDS: &[&str] = &[
    "table1",
    "table2",
    "claim-three-nines",
    "claim-cheap-nodes",
    "claim-quorum-overkill",
    "claim-heterogeneous",
    "claim-tradeoff",
    "claim-durability",
    "claim-durability-correlated",
    "optimize-durability",
    "sim-validation",
    "native-quorum",
    "native-leader",
    "native-committee",
    "fault-curves",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_four_rows_matching_the_paper() {
        let t = table1();
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.rows()[0][5], "99.94%");
        assert_eq!(t.rows()[1][5], "99.9990%");
        assert_eq!(t.rows()[2][7], "99.997%");
    }

    #[test]
    fn table2_has_four_rows_matching_the_paper() {
        let t = table2();
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.rows()[0][3], "99.97%");
        assert_eq!(t.rows()[3][6], "99.97%");
    }

    #[test]
    fn cheap_nodes_claim_holds() {
        let (_, eq) = claim_cheap_nodes();
        assert!(eq.cost_reduction_factor() > 3.0);
        assert!(eq.reliability_matches(0.05));
    }

    #[test]
    fn heterogeneous_claim_shape_holds() {
        let (_, a) = claim_heterogeneous();
        assert!(a.upgraded_safe_and_live.probability() > a.baseline_safe_and_live.probability());
        assert!(a.aware_durability.probability() > a.oblivious_durability.probability());
    }

    #[test]
    fn durability_claim_matches_paper_orders_of_magnitude() {
        let (_, c) = claim_durability();
        assert!((c.p_threshold_exceeded - 0.5).abs() < 0.1);
        assert!((c.p_data_loss - 1e-10).abs() < 1e-11);
    }

    #[test]
    fn correlated_durability_claim_reproduces_exact_answers_within_ci() {
        let (table, c) = claim_durability_correlated();
        assert_eq!(table.num_rows(), 3);
        for (label, cell) in [
            ("independent", c.independent),
            ("same-rack", c.same_rack),
            ("cross-rack", c.cross_rack),
        ] {
            assert!(
                cell.ci_contains_exact(),
                "{label}: exact {:.3e} outside CI [{:.3e}, {:.3e}]",
                cell.exact,
                cell.ci_lower,
                cell.ci_upper
            );
        }
        // The independent cell is the §4 claim itself: 1e-10 from ~1e5 weighted
        // samples — at most 1% of what plain Monte Carlo would need for this CI.
        assert!((c.independent.exact - 1e-10).abs() < 1e-12);
        assert_eq!(c.independent.engine, EngineChoice::ImportanceSampling);
        assert!(
            c.independent.efficiency_factor() >= 100.0,
            "sample efficiency only {:.1}x",
            c.independent.efficiency_factor()
        );
        // Spreading the quorum across racks is *orders of magnitude* more durable
        // than packing it into one — the correlation-aware placement story.
        assert!(c.same_rack.exact > 1e6 * c.cross_rack.exact);
        assert!(c.same_rack.p_loss > 1e6 * c.cross_rack.p_loss);
        // The common-mode cell is not rare, so the selector stays with plain MC.
        assert_eq!(c.same_rack.engine, EngineChoice::MonteCarlo);
        assert_eq!(c.cross_rack.engine, EngineChoice::ImportanceSampling);
    }

    #[test]
    fn rare_event_workload_beats_plain_monte_carlo_hundredfold() {
        let efficiency = rare_event_sample_efficiency();
        assert!(
            efficiency >= 100.0,
            "importance sampling must need >=100x fewer samples, got {efficiency:.1}x"
        );
    }

    #[test]
    fn quorum_overkill_table_contains_both_rules() {
        let t = claim_quorum_overkill();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.rows()[0][1], "34");
        assert_eq!(t.rows()[1][1], "5");
    }

    #[test]
    fn monte_carlo_crosscheck_is_close() {
        let (analytic, empirical) = monte_carlo_crosscheck(5, 0.05, 100_000, 3);
        assert!((analytic - empirical).abs() < 0.01);
    }

    #[test]
    fn sim_validation_tracks_analytic_predictions() {
        let (table, cells) = sim_validation(&[3], 0.1, 60, 11);
        let cell = cells[0];
        // With 60 trials the binomial standard error is ~4 points; allow a wide band.
        assert!(
            (cell.analytic - cell.empirical).abs() < 0.12,
            "analytic {} vs empirical {}",
            cell.analytic,
            cell.empirical
        );
        // The query API's paired z-score tells the same story in σ units.
        assert!(
            cell.z_score.abs() < 4.0,
            "validation z-score {:.2} out of range",
            cell.z_score
        );
        assert_eq!(
            table.rows()[0].len(),
            5,
            "N, analytic, empirical, trials, z"
        );
    }

    #[test]
    fn sim_throughput_batch_is_deterministic_and_reliable() {
        let a = sim_throughput_batch();
        let b = sim_throughput_batch();
        assert_eq!(a, b, "the throughput workload must be deterministic");
        assert_eq!(a.trials, SIM_THROUGHPUT_TRIALS);
        // At p_u = 5% a 5-node cluster nearly always keeps its majority.
        assert!(a.safe_and_live.value > 0.8);
    }

    #[test]
    fn sim_faults_batches_are_deterministic_and_adversarial() {
        let gray = gray_primary_batch();
        assert_eq!(
            gray,
            gray_primary_batch(),
            "the gray-failure workload must be deterministic"
        );
        assert_eq!(gray.trials, SIM_FAULTS_TRIALS);
        // Every trial schedules one slow-down of the pinned leader; gray events
        // never count as injected faults (the node is alive the whole window).
        assert_eq!(gray.total_gray_events, SIM_FAULTS_TRIALS as u64);
        // The gray primary stalls replication: safety holds but liveness
        // collapses far below the clean workload's near-perfect rate.
        assert!(gray.safe.value > 0.99);
        assert!(
            gray.live.value < 0.5,
            "a leader slowed 100,000x should stall liveness, got {}",
            gray.live.value
        );

        let heal = partition_heal_batch();
        assert_eq!(
            heal,
            partition_heal_batch(),
            "the healing-partition workload must be deterministic"
        );
        // Every trial schedules a partition and its heal (two network events).
        assert_eq!(heal.total_net_events, 2 * SIM_FAULTS_TRIALS as u64);
        assert!(heal.safe.value > 0.99);
    }

    #[test]
    fn divergence_smoke_flags_the_gray_primary_cell() {
        // The floor committed in BENCH_analysis.json: the analytic model cannot
        // see gray failures, so the gray-primary cell of the smoke query must
        // always surface as a divergence finding.
        assert!(
            divergence_smoke() >= 1,
            "the known-divergent gray-primary cell was not flagged"
        );
    }

    /// Retries a timing probe a few times before failing: wall-clock ratios on a
    /// loaded shared CI runner can dip on one attempt, while a real regression
    /// fails every attempt.
    fn assert_timing_ratio(floor: f64, what: &str, mut probe: impl FnMut() -> f64) {
        let mut last = 0.0;
        for _attempt in 0..3 {
            last = probe();
            if last > floor {
                return;
            }
        }
        panic!("{what}: ratio {last:.2}x below the {floor}x floor on every attempt");
    }

    /// CI floor on the headline speedup: the parallel engine (packed kernel + pool)
    /// must at least match the sequential scalar path. Asserted loosely (> 0.9,
    /// best of three probes) so a noisy single-core CI runner cannot flake; the
    /// real measured multi-x number is committed in `BENCH_analysis.json` and
    /// asserted ≥ 1.0 below.
    #[test]
    fn parallel_engine_is_not_slower_than_sequential_scalar() {
        assert_timing_ratio(0.9, "parallel engine vs sequential scalar", || {
            mc_speedup_ratio(20_000, 40)
        });
    }

    /// The packed kernel's throughput edge over the scalar kernel on the same
    /// workload and thread count. The committed baseline records ~7x in release
    /// mode; assert a loose 2x floor (best of three probes). Release builds only —
    /// debug codegen distorts the kernel ratio and the default CI test job runs
    /// debug, where a wall-clock assertion would be a flake vector (the
    /// deterministic committed-baseline check below covers CI).
    #[cfg(not(debug_assertions))]
    #[test]
    fn packed_kernel_outruns_the_scalar_kernel() {
        let (model, deployment) = mc_speedup_workload();
        let fm = CorrelationModel::independent(deployment.profiles().to_vec());
        let samples = 20_000;
        let time_kernel = |kernel: McKernel| {
            super::time_one("kernel-probe", 40, || {
                prob_consensus::montecarlo::monte_carlo_reliability_par_kernel(
                    &model,
                    &fm,
                    samples,
                    MC_SPEEDUP_SEED,
                    kernel,
                )
            })
            .mean_ns
        };
        assert_timing_ratio(2.0, "packed kernel vs scalar kernel", || {
            time_kernel(McKernel::Scalar) / time_kernel(McKernel::Packed)
        });
    }

    /// The scalar kernel across the pool vs. on one thread — the chunked
    /// scheduling must buy a real speedup once the pool has workers to steal with
    /// (≥ 2x floor at 4+ workers, best of three probes). On the 1- and 2-core
    /// runners a pool cannot double a single thread, so only the
    /// no-pathological-overhead floor (0.9) applies there; the committed
    /// `BENCH_analysis.json` row records the measured ratio either way. Release
    /// builds only, like the other wall-clock ratio tests.
    #[cfg(not(debug_assertions))]
    #[test]
    fn scalar_parallel_kernel_scales_with_the_pool() {
        let threads = rayon::current_num_threads();
        let floor = if threads >= 4 { 2.0 } else { 0.9 };
        let (model, deployment) = mc_speedup_workload();
        let fm = CorrelationModel::independent(deployment.profiles().to_vec());
        let samples = 40_000;
        assert_timing_ratio(floor, "scalar kernel: parallel vs sequential", || {
            let seq = super::time_one("scalar-seq-probe", 40, || {
                let mut rng = StdRng::seed_from_u64(MC_SPEEDUP_SEED);
                prob_consensus::montecarlo::monte_carlo_independent(
                    &model,
                    &deployment,
                    samples,
                    &mut rng,
                )
            });
            let par = super::time_one("scalar-par-probe", 40, || {
                prob_consensus::montecarlo::monte_carlo_reliability_par_kernel(
                    &model,
                    &fm,
                    samples,
                    MC_SPEEDUP_SEED,
                    McKernel::Scalar,
                )
            });
            seq.mean_ns / par.mean_ns
        });
    }

    /// The sweep contract: the planned batch must produce bit-identical outcomes
    /// to the naive per-cell loop (the amortization is free of behavioural drift),
    /// and every cell of this workload must actually land on the packed kernel —
    /// the subset the `sweep_amortization_speedup` headline is about.
    #[test]
    fn sweep_planned_batch_is_bit_identical_to_the_naive_loop() {
        let planned = sweep_planned_batch();
        let naive = sweep_naive_loop();
        assert_eq!(planned.cells().len(), naive.len());
        for (cell, expected) in planned.cells().iter().zip(&naive) {
            assert_eq!(&cell.outcome, expected, "{} diverged", cell.label);
            assert_eq!(cell.engine, EngineChoice::MonteCarlo);
            assert_eq!(cell.kernel(), Some(McKernel::Packed));
        }
    }

    /// Same contract for the mixed workload the work-stealing scheduler targets:
    /// exact counting cells and packed Monte Carlo cells in one plan must come
    /// out bit-identical to the cell-at-a-time front-door loop, and the grid must
    /// actually be mixed (both engines present) or the benchmark measures the
    /// wrong thing.
    #[test]
    fn mixed_sweep_batch_is_bit_identical_to_the_naive_loop() {
        let batch = sweep_mixed_batch();
        let naive = sweep_mixed_naive_loop();
        assert_eq!(batch.cells().len(), naive.len());
        for (cell, expected) in batch.cells().iter().zip(&naive) {
            assert_eq!(&cell.outcome, expected, "{} diverged", cell.label);
        }
        let engines: Vec<EngineChoice> = batch.cells().iter().map(|c| c.engine).collect();
        assert!(engines.contains(&EngineChoice::Counting));
        assert!(engines.contains(&EngineChoice::MonteCarlo));
    }

    /// The epistemic workload's floor: the posterior sweep must produce a real
    /// second-order report — [`EPISTEMIC_DRAWS`] resolved draws, an epistemic
    /// credible interval strictly wider than zero, and an aleatoric interval
    /// alongside it — and the whole thing must be deterministic (byte-identical
    /// JSON across fresh sessions), or the committed
    /// `epistemic_interval_width` baseline row is meaningless.
    #[test]
    fn epistemic_sweep_reports_a_deterministic_interval() {
        let report = epistemic_sweep_batch();
        assert_eq!(report.cells().len(), 1);
        let cell = &report.cells()[0];
        let ep = cell
            .epistemic
            .as_ref()
            .expect("the posterior budget must surface an epistemic report");
        assert_eq!(ep.draws.len(), EPISTEMIC_DRAWS);
        assert!(
            ep.epistemic_width() > 0.0,
            "second-order mode must widen the answer: {ep:?}"
        );
        assert!(
            ep.aleatoric_width() > 0.0,
            "the Monte Carlo cell must keep its sampling interval: {ep:?}"
        );
        assert_eq!(epistemic_interval_width(), ep.epistemic_width());
        let again = epistemic_sweep_batch();
        assert_eq!(
            report.zero_wall_clock().to_json(),
            again.zero_wall_clock().to_json(),
            "the epistemic workload must be deterministic across sessions"
        );
    }

    /// The committed `BENCH_analysis.json` must carry the epistemic rows, and
    /// the interval width it records must be a real (positive) width — the
    /// deterministic counterpart of the in-process floor above, so a regression
    /// can only land by committing a bad baseline.
    #[test]
    fn committed_baseline_reports_a_real_epistemic_interval() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_analysis.json");
        let baseline = std::fs::read_to_string(path).expect("BENCH_analysis.json is committed");
        let width = baseline
            .lines()
            .find_map(|l| l.trim().strip_prefix("\"epistemic_interval_width\": "))
            .and_then(|v| v.trim_end_matches(',').parse::<f64>().ok())
            .expect("baseline records epistemic_interval_width");
        assert!(
            width > 0.0,
            "committed baseline reports a degenerate epistemic interval: {width}"
        );
        let draws_per_sec = baseline
            .lines()
            .find_map(|l| l.trim().strip_prefix("\"posterior_draws_per_sec\": "))
            .and_then(|v| v.trim_end_matches(',').parse::<f64>().ok())
            .expect("baseline records posterior_draws_per_sec");
        assert!(
            draws_per_sec > 0.0,
            "committed baseline reports a non-positive posterior draw rate: {draws_per_sec}"
        );
    }

    /// The optimizer workload: the catalogue grid must expand to the documented
    /// candidate count, resolve exactly (no sampling tier on exact cells), and
    /// emit a non-empty deterministic frontier — the in-process counterpart of
    /// the committed `optimizer_frontier_size` floor.
    #[test]
    fn optimizer_workload_is_deterministic_with_a_real_frontier() {
        let report = optimizer_batch();
        assert_eq!(report.evaluated.len(), OPTIMIZER_CANDIDATES);
        assert_eq!(report.screened, OPTIMIZER_CANDIDATES);
        assert_eq!(report.refined, 0, "exact candidates never need refinement");
        assert!(report.evaluated.iter().all(|r| r.exact));
        assert!(
            !report.frontier.is_empty(),
            "the catalogue grid must reach {OPTIMIZER_TARGET_NINES} nines"
        );
        assert_eq!(
            report.to_json(),
            optimizer_batch().to_json(),
            "the exact search must be bit-reproducible"
        );
    }

    /// The `optimize-durability` experiment holds the paper's claim: the search
    /// rediscovers cross-rack placement with an orders-of-magnitude durability
    /// gap over same-rack.
    #[test]
    fn optimize_durability_experiment_rediscovers_cross_rack() {
        let (_, report) = optimize_durability();
        let winner = report.cheapest().expect("cross-rack is feasible");
        assert_eq!(winner.placement, Some(Placement::CrossRack));
        let loser = report
            .evaluated
            .iter()
            .find(|r| r.placement == Some(Placement::SameRack))
            .expect("same-rack is still evaluated");
        assert!(!loser.feasible);
        assert!(loser.failure_probability() / winner.failure_probability() > 1e6);
    }

    /// The committed `BENCH_analysis.json` must carry the optimizer rows with a
    /// real (non-empty) frontier and a positive screening rate — like the
    /// epistemic rows, deterministic reads of the checked-in baseline.
    #[test]
    fn committed_baseline_reports_a_real_optimizer_frontier() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_analysis.json");
        let baseline = std::fs::read_to_string(path).expect("BENCH_analysis.json is committed");
        let frontier = baseline
            .lines()
            .find_map(|l| l.trim().strip_prefix("\"optimizer_frontier_size\": "))
            .and_then(|v| v.trim_end_matches(',').parse::<usize>().ok())
            .expect("baseline records optimizer_frontier_size");
        assert!(
            frontier >= 1,
            "committed baseline reports an empty optimizer frontier"
        );
        let rate = baseline
            .lines()
            .find_map(|l| l.trim().strip_prefix("\"frontier_candidates_per_sec\": "))
            .and_then(|v| v.trim_end_matches(',').parse::<f64>().ok())
            .expect("baseline records frontier_candidates_per_sec");
        assert!(
            rate > 0.0,
            "committed baseline reports a non-positive screening rate: {rate}"
        );
    }

    /// The planned batch must amortize per-cell setup (selector pilot, scenario
    /// conversion, kernel compilation) into a real per-cell speedup. Release
    /// builds only, best of three probes, with a floor well under the committed
    /// baseline so a loaded runner cannot flake.
    #[cfg(not(debug_assertions))]
    #[test]
    fn planned_sweep_amortizes_per_cell_setup() {
        assert_timing_ratio(1.1, "planned batch vs naive per-cell loop", || {
            let naive = super::time_one("sweep-probe-naive", 60, sweep_naive_loop).mean_ns;
            let planned = super::time_one("sweep-probe-planned", 60, sweep_planned_batch).mean_ns;
            naive / planned
        });
    }

    /// The service workload must actually stream: all three cells (counting,
    /// packed MC, importance-sampling quorum) arrive as `cell` events followed
    /// by exactly one `done`, with no `error` events — cold and warm alike.
    #[test]
    fn server_exchange_streams_every_cell() {
        let count = |output: &str, kind: &str| {
            output
                .lines()
                .filter(|l| l.contains(&format!("\"event\":\"{kind}\"")))
                .count()
        };
        let server = Arc::new(repro_server::Server::new());
        for pass in ["cold", "warm"] {
            let output = server_query_warm(&server);
            assert_eq!(count(&output, "cell"), 3, "{pass}: {output}");
            assert_eq!(count(&output, "done"), 1, "{pass}: {output}");
            assert_eq!(count(&output, "error"), 0, "{pass}: {output}");
        }
        assert!(
            server.session().cache_stats().hits > 0,
            "the warm pass must hit the session cache"
        );
    }

    /// The service headline: a long-lived server answering the mixed workload
    /// out of its warm session cache must beat a fresh-session-per-request
    /// server by the same ≥1.3x floor as `sweep_amortization_speedup` (the
    /// request is setup-dominated by construction). Release builds only, best
    /// of three probes, like the other wall-clock ratio tests.
    #[cfg(not(debug_assertions))]
    #[test]
    fn server_warm_cache_beats_cold() {
        assert_timing_ratio(1.3, "warm server vs fresh session per request", || {
            let cold = super::time_one("server-probe-cold", 60, server_query_cold).mean_ns;
            let server = Arc::new(repro_server::Server::new());
            server_query_warm(&server);
            let warm =
                super::time_one("server-probe-warm", 60, || server_query_warm(&server)).mean_ns;
            cold / warm
        });
    }

    /// The committed `BENCH_analysis.json` must report a parallel speedup that is
    /// actually a speedup. This reads the checked-in baseline (deterministic — no
    /// timing in CI), so a regression can only land by committing a bad baseline.
    #[test]
    fn committed_baseline_reports_a_real_parallel_speedup() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_analysis.json");
        let baseline = std::fs::read_to_string(path).expect("BENCH_analysis.json is committed");
        let speedup = baseline
            .lines()
            .find_map(|l| l.trim().strip_prefix("\"monte_carlo_parallel_speedup\": "))
            .and_then(|v| v.trim_end_matches(',').parse::<f64>().ok())
            .expect("baseline records monte_carlo_parallel_speedup");
        assert!(
            speedup >= 1.0,
            "committed baseline reports a parallel slowdown: {speedup}"
        );
        // The kernel ratio is measured within one run on one machine, so unlike an
        // absolute samples-per-second floor it stays meaningful no matter what
        // hardware regenerates the baseline.
        let kernel_speedup = baseline
            .lines()
            .find_map(|l| l.trim().strip_prefix("\"packed_kernel_speedup\": "))
            .and_then(|v| v.trim_end_matches(',').parse::<f64>().ok())
            .expect("baseline records packed_kernel_speedup");
        assert!(
            kernel_speedup >= 2.0,
            "committed baseline's packed kernel only {kernel_speedup:.2}x the scalar kernel"
        );
        assert!(
            baseline.contains("\"monte_carlo_samples_per_sec\""),
            "baseline must record the packed kernel's absolute throughput"
        );
        // The sweep-amortization ratio is measured within one run on one machine
        // (same cells both sides), so a floor stays meaningful across hardware.
        let sweep_speedup = baseline
            .lines()
            .find_map(|l| l.trim().strip_prefix("\"sweep_amortization_speedup\": "))
            .and_then(|v| v.trim_end_matches(',').parse::<f64>().ok())
            .expect("baseline records sweep_amortization_speedup");
        assert!(
            sweep_speedup >= 1.3,
            "committed baseline's planned sweep only {sweep_speedup:.2}x the naive loop"
        );
        // The multi-word packed kernel's absolute throughput at the production
        // width (W=8, 512 lanes/pass). The floor is 4x the single-word kernel's
        // original 1.67e8 samples/sec: regenerating the baseline on a machine
        // where the wide kernel cannot clear that bar is a regression.
        let packed_rate = baseline
            .lines()
            .find_map(|l| l.trim().strip_prefix("\"packed_samples_per_sec\": "))
            .and_then(|v| v.trim_end_matches(',').parse::<f64>().ok())
            .expect("baseline records packed_samples_per_sec");
        assert!(
            packed_rate >= 6.68e8,
            "committed baseline's W=8 packed kernel only {packed_rate:.3e} samples/sec (floor 6.68e8)"
        );
        // The mixed exact + Monte Carlo sweep through the work-stealing
        // scheduler: wall clock is tracked, and the batch must not be slower
        // than running the same cells one at a time.
        let sweep_wall_ms = baseline
            .lines()
            .find_map(|l| l.trim().strip_prefix("\"sweep_wall_clock_ms\": "))
            .and_then(|v| v.trim_end_matches(',').parse::<f64>().ok())
            .expect("baseline records sweep_wall_clock_ms");
        assert!(
            sweep_wall_ms > 0.0,
            "mixed sweep wall clock must be positive, got {sweep_wall_ms}"
        );
        let mixed_speedup = baseline
            .lines()
            .find_map(|l| l.trim().strip_prefix("\"sweep_mixed_speedup\": "))
            .and_then(|v| v.trim_end_matches(',').parse::<f64>().ok())
            .expect("baseline records sweep_mixed_speedup");
        assert!(
            mixed_speedup >= 1.0,
            "committed baseline's scheduled mixed sweep is slower than per-cell: {mixed_speedup:.2}x"
        );
        // The simulation engine's throughput row: traces/sec must be recorded and
        // positive (absolute floors would be hardware-dependent; the number is
        // tracked, not gated).
        let traces_per_sec = baseline
            .lines()
            .find_map(|l| l.trim().strip_prefix("\"sim_traces_per_sec\": "))
            .and_then(|v| v.trim_end_matches(',').parse::<f64>().ok())
            .expect("baseline records sim_traces_per_sec");
        assert!(
            traces_per_sec > 0.0,
            "sim trace throughput must be positive, got {traces_per_sec}"
        );
        // The adversarial-environment rows: gray-failure trace throughput is
        // tracked (positive, not hardware-gated), and the divergence smoke
        // query must have flagged the known-divergent gray-primary cell — the
        // floor is 1, and a baseline regenerated with a blind cross-validation
        // mode fails here.
        let gray_rate = baseline
            .lines()
            .find_map(|l| l.trim().strip_prefix("\"gray_failure_traces_per_sec\": "))
            .and_then(|v| v.trim_end_matches(',').parse::<f64>().ok())
            .expect("baseline records gray_failure_traces_per_sec");
        assert!(
            gray_rate > 0.0,
            "gray-failure trace throughput must be positive, got {gray_rate}"
        );
        let divergent_cells = baseline
            .lines()
            .find_map(|l| {
                l.trim()
                    .strip_prefix("\"divergence_smoke_divergent_cells\": ")
            })
            .and_then(|v| v.trim_end_matches(',').parse::<usize>().ok())
            .expect("baseline records divergence_smoke_divergent_cells");
        assert!(
            divergent_cells >= 1,
            "committed baseline's divergence smoke flagged no cells"
        );
        // The service rows: the sustained warm-server request rate is tracked
        // (positive, not hardware-gated), and the warm-cache payoff — measured
        // within one run on one machine — must clear the same 1.3x floor as the
        // sweep amortization it generalizes.
        let server_rate = baseline
            .lines()
            .find_map(|l| l.trim().strip_prefix("\"server_queries_per_sec\": "))
            .and_then(|v| v.trim_end_matches(',').parse::<f64>().ok())
            .expect("baseline records server_queries_per_sec");
        assert!(
            server_rate > 0.0,
            "server request rate must be positive, got {server_rate}"
        );
        let warm_speedup = baseline
            .lines()
            .find_map(|l| l.trim().strip_prefix("\"server_warm_cache_speedup\": "))
            .and_then(|v| v.trim_end_matches(',').parse::<f64>().ok())
            .expect("baseline records server_warm_cache_speedup");
        assert!(
            warm_speedup >= 1.3,
            "committed baseline's warm server only {warm_speedup:.2}x a cold session"
        );
    }

    #[test]
    fn every_experiment_id_is_unique() {
        let mut ids = EXPERIMENT_IDS.to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), EXPERIMENT_IDS.len());
    }
}
