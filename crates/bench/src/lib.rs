//! Experiment implementations behind the `repro` harness.
//!
//! Every table and quantitative claim in the paper's evaluation has a function here that
//! recomputes it and returns a formatted [`Table`] (see DESIGN.md for the experiment
//! index). The `repro` binary prints them; the unit tests in this crate and the
//! integration tests at the workspace root assert the headline numbers.

use fault_model::curve::WeibullCurve;
use fault_model::metrics::HOURS_PER_YEAR;
use fault_model::mode::FaultProfile;
use fault_model::node::{Fleet, NodeSpec};
use prob_consensus::analyzer::analyze_auto;
use prob_consensus::committee::committee_vs_full_cluster;
use prob_consensus::cost::{cost_equivalence, default_catalogue, CostEquivalence};
use prob_consensus::deployment::Deployment;
use prob_consensus::durability::{durability_claim, DurabilityClaim};
use prob_consensus::dynamic_quorum::{smallest_raft_quorums, trigger_quorum_comparison};
use prob_consensus::engine::Budget;
use prob_consensus::heterogeneity::{heterogeneity_analysis, HeterogeneityAnalysis};
use prob_consensus::leader::{leader_failure_probability, LeaderPolicy};
use prob_consensus::montecarlo::monte_carlo_independent_par;
use prob_consensus::pbft_model::PbftModel;
use prob_consensus::raft_model::RaftModel;
use prob_consensus::report::{percent, Table};
use prob_consensus::timevarying::{reliability_trajectory, summarize};
use prob_consensus::tradeoff::{compare, pbft_sweep};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

use consensus_protocols::harness::RaftHarness;
use consensus_protocols::raft::RaftConfig;
use consensus_sim::fault::FaultSchedule;
use consensus_sim::network::NetworkConfig;
use consensus_sim::time::SimTime;

/// Experiment `table1`: PBFT reliability at uniform p_u = 1% (Table 1 of the paper).
pub fn table1() -> Table {
    let mut table = Table::new(
        "Table 1: PBFT reliability, uniform p_u = 1%",
        &[
            "N",
            "|Q_eq|",
            "|Q_per|",
            "|Q_vc|",
            "|Q_vc_t|",
            "Safe %",
            "Live %",
            "Safe and Live %",
        ],
    );
    for n in [4usize, 5, 7, 8] {
        let model = PbftModel::standard(n);
        let report = analyze_auto(
            &model,
            &Deployment::uniform_byzantine(n, 0.01),
            &Budget::default(),
        )
        .report;
        table.push_row(vec![
            n.to_string(),
            model.q_eq().to_string(),
            model.q_per().to_string(),
            model.q_vc().to_string(),
            model.q_vc_t().to_string(),
            report.safe.as_percent(),
            report.live.as_percent(),
            report.safe_and_live.as_percent(),
        ]);
    }
    table
}

/// Experiment `table2`: Raft reliability for uniform node failure p_u (Table 2).
pub fn table2() -> Table {
    let mut table = Table::new(
        "Table 2: Raft reliability for uniform node failure p_u",
        &[
            "N", "|Q_per|", "|Q_vc|", "S&L p=1%", "S&L p=2%", "S&L p=4%", "S&L p=8%",
        ],
    );
    for n in [3usize, 5, 7, 9] {
        let model = RaftModel::standard(n);
        let mut row = vec![
            n.to_string(),
            model.q_per().to_string(),
            model.q_vc().to_string(),
        ];
        for p in [0.01, 0.02, 0.04, 0.08] {
            let report =
                analyze_auto(&model, &Deployment::uniform_crash(n, p), &Budget::default()).report;
            row.push(report.safe_and_live.as_percent());
        }
        table.push_row(row);
    }
    table
}

/// Experiment `claim-three-nines`: "Raft with N = 3 is only 3 nines safe and live".
pub fn claim_three_nines() -> Table {
    let mut table = Table::new(
        "Claim: f-threshold protocols are not 100% reliable (Raft N=3, p_u=1%)",
        &["Metric", "Value"],
    );
    let report = analyze_auto(
        &RaftModel::standard(3),
        &Deployment::uniform_crash(3, 0.01),
        &Budget::default(),
    )
    .report;
    table.push_row(vec!["Safe".into(), report.safe.as_percent()]);
    table.push_row(vec!["Live".into(), report.live.as_percent()]);
    table.push_row(vec![
        "Safe and live".into(),
        report.safe_and_live.as_percent(),
    ]);
    table.push_row(vec![
        "Nines (safe and live)".into(),
        format!("{:.2}", report.safe_and_live.nines()),
    ]);
    table
}

/// Experiment `claim-cheap-nodes`: nine 8% spot nodes match three 1% on-demand nodes at
/// roughly a third of the cost.
pub fn claim_cheap_nodes() -> (Table, CostEquivalence) {
    let catalogue = default_catalogue();
    let eq = cost_equivalence(&catalogue[0], &catalogue[1], 3, 9, RaftModel::standard);
    let mut table = Table::new(
        "Claim: larger networks of less reliable nodes can help",
        &["Deployment", "S&L", "$ / hour", "Cost vs baseline"],
    );
    table.push_row(vec![
        format!("{} x {} (p=1%)", eq.baseline.n, eq.baseline.instance.name),
        eq.baseline.report.safe_and_live.as_percent(),
        format!("{:.2}", eq.baseline.hourly_cost),
        "1.00x".into(),
    ]);
    table.push_row(vec![
        format!(
            "{} x {} (p=8%)",
            eq.alternative.n, eq.alternative.instance.name
        ),
        eq.alternative.report.safe_and_live.as_percent(),
        format!("{:.2}", eq.alternative.hourly_cost),
        format!("{:.2}x cheaper", eq.cost_reduction_factor()),
    ]);
    (table, eq)
}

/// Experiment `claim-quorum-overkill`: linear-size trigger quorums vs probabilistic
/// sampling at N = 100, p_u = 1%.
pub fn claim_quorum_overkill() -> Table {
    let comparison = trigger_quorum_comparison(100, 0.01, 1.0 - 1e-10);
    let mut table = Table::new(
        "Claim: linear size quorums can be overkill (N=100, p_u=1%)",
        &["Rule", "|Q_vc_t|", "P(contains a correct node)"],
    );
    table.push_row(vec![
        "f-threshold (f+1)".into(),
        comparison.f_threshold_size.to_string(),
        "1 (worst-case guarantee)".into(),
    ]);
    table.push_row(vec![
        "probabilistic sample".into(),
        comparison.probabilistic_size.to_string(),
        percent(comparison.achieved),
    ]);
    table
}

/// Experiment `claim-heterogeneous`: the 7-node heterogeneous Raft example of §3.2.
pub fn claim_heterogeneous() -> (Table, HeterogeneityAnalysis) {
    let baseline = Deployment::uniform_crash(7, 0.08);
    let analysis = heterogeneity_analysis(&baseline, 3, FaultProfile::crash_only(0.01), 4, |d| {
        analyze_auto(&RaftModel::standard(7), d, &Budget::default())
            .report
            .safe_and_live
    });
    let mut table = Table::new(
        "Claim: Raft and PBFT underutilize reliable nodes (7-node Raft)",
        &["Configuration", "Value"],
    );
    table.push_row(vec![
        "S&L, 7 x 8% nodes".into(),
        analysis.baseline_safe_and_live.as_percent(),
    ]);
    table.push_row(vec![
        "S&L, 3 nodes upgraded to 1%".into(),
        analysis.upgraded_safe_and_live.as_percent(),
    ]);
    table.push_row(vec![
        "Durability, fault-curve-oblivious quorum".into(),
        analysis.oblivious_durability.as_percent(),
    ]);
    table.push_row(vec![
        "Durability, quorum must include a reliable node".into(),
        analysis.aware_durability.as_percent(),
    ]);
    (table, analysis)
}

/// Experiment `claim-tradeoff`: the hidden safety/liveness trade-off between 4-, 5- and
/// 7-node PBFT at p_u = 1%.
pub fn claim_tradeoff() -> Table {
    let points = pbft_sweep(&[4, 5, 7], 0.01);
    let mut table = Table::new(
        "Claim: hidden safety/liveness trade-off (PBFT, p_u = 1%)",
        &["N", "Safe %", "Live %", "Relative cost"],
    );
    for p in &points {
        table.push_row(vec![
            p.n.to_string(),
            p.report.safe.as_percent(),
            p.report.live.as_percent(),
            format!("{:.2}x", p.relative_cost / points[0].relative_cost),
        ]);
    }
    let c = compare(&points[0], &points[1]);
    table.push_row(vec![
        "5 vs 4".into(),
        format!("{:.0}x safer", c.safety_improvement),
        format!("{:.2}x less live", c.liveness_degradation),
        format!("{:.2}x", c.cost_ratio),
    ]);
    table
}

/// Experiment `claim-durability`: the §4 durability argument at N = 100, |Q_per| = 10,
/// p_u = 10%.
pub fn claim_durability() -> (Table, DurabilityClaim) {
    let deployment = Deployment::uniform_crash(100, 0.10);
    let claim = durability_claim(&deployment, 10);
    let mut table = Table::new(
        "Claim: |Q_per| faults rarely mean data loss (N=100, |Q_per|=10, p_u=10%)",
        &["Quantity", "Probability"],
    );
    table.push_row(vec![
        "At least |Q_per| simultaneous faults".into(),
        format!("{:.3}", claim.p_threshold_exceeded),
    ]);
    table.push_row(vec![
        "Faults cover the last persistence quorum".into(),
        format!("{:.2e}", claim.p_data_loss),
    ]);
    table.push_row(vec![
        "Pessimism factor".into(),
        format!("{:.2e}", claim.pessimism_factor()),
    ]);
    (table, claim)
}

/// The result of one simulation-validation cell: analytic prediction vs. empirical rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationCell {
    /// Cluster size.
    pub n: usize,
    /// Per-node fault probability.
    pub p: f64,
    /// Analytic P[safe ∧ live] from the counting engine.
    pub analytic: f64,
    /// Empirical fraction of simulated runs that were safe and live.
    pub empirical: f64,
    /// Number of simulated runs.
    pub trials: usize,
}

/// Experiment `sim-validation`: run the executable Raft under fault schedules sampled
/// from the analysis deployment and compare the observed safe-and-live rate with the
/// analytic prediction.
pub fn sim_validation(
    ns: &[usize],
    p: f64,
    trials: usize,
    seed: u64,
) -> (Table, Vec<ValidationCell>) {
    let mut table = Table::new(
        format!("Simulation validation: Raft, p_u = {}%", p * 100.0),
        &["N", "Analytic S&L", "Empirical S&L", "Trials"],
    );
    let mut cells = Vec::new();
    let mut rng = StdRng::seed_from_u64(seed);
    for &n in ns {
        let deployment = Deployment::uniform_crash(n, p);
        let analytic = analyze_auto(&RaftModel::standard(n), &deployment, &Budget::default())
            .report
            .safe_and_live
            .probability();
        let mut ok = 0usize;
        for trial in 0..trials {
            let schedule = FaultSchedule::sample_from_profiles(
                deployment.profiles(),
                SimTime::from_millis(200),
                &mut rng,
            );
            let mut harness = RaftHarness::with_config(
                RaftConfig::standard(n),
                NetworkConfig::lan(),
                seed ^ (trial as u64) << 8 | n as u64,
            )
            .with_faults(&schedule);
            harness.submit_commands(3);
            let outcome = harness.run_for_millis(2_500);
            // Liveness only counts if a quorum of correct nodes even exists; agreement
            // must hold regardless.
            if outcome.safe_and_live() {
                ok += 1;
            }
        }
        let empirical = ok as f64 / trials as f64;
        table.push_row(vec![
            n.to_string(),
            percent(analytic),
            percent(empirical),
            trials.to_string(),
        ]);
        cells.push(ValidationCell {
            n,
            p,
            analytic,
            empirical,
            trials,
        });
    }
    (table, cells)
}

/// Experiment `native-quorum`: dynamic quorum sizing on fleets of different reliability.
pub fn native_quorum() -> Table {
    let mut table = Table::new(
        "Probability-native: smallest Raft quorums meeting 3 nines (N = 9)",
        &["Fleet", "|Q_per|", "|Q_vc|", "Achieved S&L"],
    );
    for (label, p) in [("p=0.1%", 0.001), ("p=1%", 0.01), ("p=4%", 0.04)] {
        let d = Deployment::uniform_crash(9, p);
        match smallest_raft_quorums(&d, 3.0) {
            Some(sizing) => table.push_row(vec![
                label.to_string(),
                sizing.model.q_per().to_string(),
                sizing.model.q_vc().to_string(),
                percent(sizing.achieved),
            ]),
            None => table.push_row(vec![
                label.to_string(),
                "-".into(),
                "-".into(),
                "target unreachable".into(),
            ]),
        }
    }
    table
}

/// Experiment `native-leader`: reliability-aware vs oblivious leader selection.
pub fn native_leader() -> Table {
    let deployment = Deployment::from_profiles(vec![
        FaultProfile::crash_only(0.08),
        FaultProfile::crash_only(0.08),
        FaultProfile::crash_only(0.04),
        FaultProfile::crash_only(0.01),
        FaultProfile::crash_only(0.01),
    ]);
    let mut table = Table::new(
        "Probability-native: leader selection policies (5-node heterogeneous fleet)",
        &["Policy", "P(leader fails within the window)"],
    );
    for (label, policy) in [
        ("oblivious (fleet average)", LeaderPolicy::Oblivious),
        ("most reliable node", LeaderPolicy::MostReliable),
        ("worst case", LeaderPolicy::WorstCase),
    ] {
        table.push_row(vec![
            label.to_string(),
            format!("{:.3}", leader_failure_probability(&deployment, policy)),
        ]);
    }
    table
}

/// Experiment `native-committee`: running consensus on a reliable committee instead of
/// the whole fleet.
pub fn native_committee() -> Table {
    let mut profiles = vec![FaultProfile::crash_only(0.005); 5];
    profiles.extend(vec![FaultProfile::crash_only(0.08); 10]);
    let deployment = Deployment::from_profiles(profiles);
    let cmp = committee_vs_full_cluster(&deployment, 5, RaftModel::standard);
    let mut table = Table::new(
        "Probability-native: committee of reliable nodes vs full 15-node fleet",
        &["Configuration", "S&L", "Participation"],
    );
    table.push_row(vec![
        "full fleet (15 nodes)".into(),
        cmp.full_cluster.safe_and_live.as_percent(),
        "100%".into(),
    ]);
    table.push_row(vec![
        "committee (5 most reliable)".into(),
        cmp.committee.safe_and_live.as_percent(),
        format!("{:.0}%", cmp.participation_fraction * 100.0),
    ]);
    table
}

/// Experiment `fault-curves`: time-varying guarantees on an aging fleet and the impact of
/// correlated failures.
pub fn fault_curves() -> Table {
    // An aging 5-node fleet on a wear-out Weibull curve.
    let fleet: Fleet = (0..5)
        .map(|i| {
            NodeSpec::with_constant_crash(i, 0.0, HOURS_PER_YEAR)
                .with_crash_curve(Arc::new(WeibullCurve::new(3.0, 70_000.0)))
                .with_age(10_000.0)
        })
        .collect();
    let trajectory = reliability_trajectory(
        &RaftModel::standard(5),
        &fleet,
        HOURS_PER_YEAR / 4.0,
        5.0 * HOURS_PER_YEAR,
        HOURS_PER_YEAR,
    );
    let mut table = Table::new(
        "Fault curves: quarterly S&L of an aging 5-node Raft fleet (wear-out Weibull)",
        &["Years from now", "S&L over the next quarter"],
    );
    for point in &trajectory {
        table.push_row(vec![
            format!("{:.0}", point.at_hours / HOURS_PER_YEAR),
            point.report.safe_and_live.as_percent(),
        ]);
    }
    let summary = summarize(&trajectory, 3.0);
    table.push_row(vec![
        "worst point".into(),
        format!(
            "{} (target held: {})",
            percent(summary.worst_probability),
            summary.target_held
        ),
    ]);
    table
}

/// Cross-check used by `fault-curves`/tests: parallel Monte Carlo agrees with the
/// engine the auto-selector picks (counting, for these models). Pinning the sampling
/// engine is deliberate here — the point is cross-engine agreement.
pub fn monte_carlo_crosscheck(n: usize, p: f64, samples: usize, seed: u64) -> (f64, f64) {
    let deployment = Deployment::uniform_crash(n, p);
    let model = RaftModel::standard(n);
    let analytic = analyze_auto(&model, &deployment, &Budget::default())
        .report
        .safe_and_live
        .probability();
    let mc = monte_carlo_independent_par(&model, &deployment, samples, seed);
    (analytic, mc.safe_and_live.value)
}

/// One wall-clock measurement of an analysis hot path, for the `repro --bench`
/// baseline (`BENCH_analysis.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchMeasurement {
    /// Benchmark id, mirroring the criterion bench names where one exists.
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Iterations measured (after one warm-up iteration).
    pub iters: usize,
}

/// Times `f` for roughly `budget_ms` of wall clock.
///
/// One warm-up iteration calibrates a batch size (~1/50 of the budget per batch), and
/// the deadline is only checked between batches, so the clock reads stay out of the
/// measured mean even for nanosecond-scale `f`.
fn time_one<T>(id: &str, budget_ms: u64, mut f: impl FnMut() -> T) -> BenchMeasurement {
    use std::time::{Duration, Instant};
    let warmup_start = Instant::now();
    std::hint::black_box(f());
    let one = warmup_start.elapsed();
    let batch_budget = Duration::from_millis(budget_ms.max(1)) / 50;
    let batch =
        ((batch_budget.as_nanos().max(1) / one.as_nanos().max(1)) as usize).clamp(1, 1_000_000);

    let deadline = Instant::now() + Duration::from_millis(budget_ms);
    let start = Instant::now();
    let mut iters = 0usize;
    while iters < 3 * batch || Instant::now() < deadline {
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        iters += batch;
    }
    BenchMeasurement {
        id: id.to_string(),
        mean_ns: start.elapsed().as_nanos() as f64 / iters as f64,
        iters,
    }
}

/// Benchmark ids of the sequential / parallel Monte Carlo pair whose ratio is the
/// parallel speedup reported in `BENCH_analysis.json`.
pub const MC_SEQUENTIAL_ID: &str = "monte-carlo/raft-9-sequential";
/// See [`MC_SEQUENTIAL_ID`].
pub const MC_PARALLEL_ID: &str = "monte-carlo/raft-9-parallel";
/// Sample budget of the speedup workload — shared with the criterion bench in
/// `benches/analysis.rs` so the recorded baseline and the bench measure the same thing.
pub const MC_SPEEDUP_SAMPLES: usize = 200_000;
/// Seed of the speedup workload.
pub const MC_SPEEDUP_SEED: u64 = 7;

/// The model/deployment pair of the sequential-vs-parallel speedup workload
/// (9-node Raft at p_u = 8%).
pub fn mc_speedup_workload() -> (RaftModel, Deployment) {
    (RaftModel::standard(9), Deployment::uniform_crash(9, 0.08))
}

/// The analysis-engine baseline suite behind `repro --bench`: the three engines at
/// representative sizes, auto-selection overhead, and sequential vs. parallel Monte
/// Carlo (whose ratio is the parallel speedup on this machine).
pub fn analysis_benchmarks(budget_ms: u64) -> Vec<BenchMeasurement> {
    let budget = Budget::default();
    let mut out = Vec::new();

    let d9 = Deployment::uniform_crash(9, 0.02);
    let m9 = RaftModel::standard(9);
    out.push(time_one("counting/raft-9", budget_ms, || {
        analyze_auto(&m9, &d9, &budget)
    }));
    let d100 = Deployment::uniform_crash(100, 0.02);
    let m100 = RaftModel::standard(100);
    out.push(time_one("counting/raft-100", budget_ms, || {
        analyze_auto(&m100, &d100, &budget)
    }));

    let d13 = Deployment::uniform_crash(13, 0.02);
    let m13 = RaftModel::standard(13);
    out.push(time_one("enumeration/raft-13", budget_ms, || {
        prob_consensus::analyzer::analyze_exact(&m13, &d13)
    }));

    let (m_mc, d_mc) = mc_speedup_workload();
    out.push(time_one(MC_SEQUENTIAL_ID, budget_ms, || {
        let mut rng = StdRng::seed_from_u64(MC_SPEEDUP_SEED);
        prob_consensus::montecarlo::monte_carlo_independent(
            &m_mc,
            &d_mc,
            MC_SPEEDUP_SAMPLES,
            &mut rng,
        )
    }));
    out.push(time_one(MC_PARALLEL_ID, budget_ms, || {
        monte_carlo_independent_par(&m_mc, &d_mc, MC_SPEEDUP_SAMPLES, MC_SPEEDUP_SEED)
    }));
    out
}

/// Renders measurements as the `BENCH_analysis.json` baseline document.
pub fn benchmarks_to_json(measurements: &[BenchMeasurement]) -> String {
    let threads = rayon::current_num_threads();
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    let seq = measurements.iter().find(|m| m.id == MC_SEQUENTIAL_ID);
    let par = measurements.iter().find(|m| m.id == MC_PARALLEL_ID);
    let (seq, par) = (
        seq.expect("baseline suite always measures the sequential MC path"),
        par.expect("baseline suite always measures the parallel MC path"),
    );
    json.push_str(&format!(
        "  \"monte_carlo_parallel_speedup\": {:.3},\n",
        seq.mean_ns / par.mean_ns
    ));
    json.push_str("  \"benchmarks\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let comma = if i + 1 == measurements.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"iters\": {}}}{comma}\n",
            m.id, m.mean_ns, m.iters
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

/// All experiment ids understood by the `repro` binary, in DESIGN.md order.
pub const EXPERIMENT_IDS: &[&str] = &[
    "table1",
    "table2",
    "claim-three-nines",
    "claim-cheap-nodes",
    "claim-quorum-overkill",
    "claim-heterogeneous",
    "claim-tradeoff",
    "claim-durability",
    "sim-validation",
    "native-quorum",
    "native-leader",
    "native-committee",
    "fault-curves",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_four_rows_matching_the_paper() {
        let t = table1();
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.rows()[0][5], "99.94%");
        assert_eq!(t.rows()[1][5], "99.9990%");
        assert_eq!(t.rows()[2][7], "99.997%");
    }

    #[test]
    fn table2_has_four_rows_matching_the_paper() {
        let t = table2();
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.rows()[0][3], "99.97%");
        assert_eq!(t.rows()[3][6], "99.97%");
    }

    #[test]
    fn cheap_nodes_claim_holds() {
        let (_, eq) = claim_cheap_nodes();
        assert!(eq.cost_reduction_factor() > 3.0);
        assert!(eq.reliability_matches(0.05));
    }

    #[test]
    fn heterogeneous_claim_shape_holds() {
        let (_, a) = claim_heterogeneous();
        assert!(a.upgraded_safe_and_live.probability() > a.baseline_safe_and_live.probability());
        assert!(a.aware_durability.probability() > a.oblivious_durability.probability());
    }

    #[test]
    fn durability_claim_matches_paper_orders_of_magnitude() {
        let (_, c) = claim_durability();
        assert!((c.p_threshold_exceeded - 0.5).abs() < 0.1);
        assert!((c.p_data_loss - 1e-10).abs() < 1e-11);
    }

    #[test]
    fn quorum_overkill_table_contains_both_rules() {
        let t = claim_quorum_overkill();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.rows()[0][1], "34");
        assert_eq!(t.rows()[1][1], "5");
    }

    #[test]
    fn monte_carlo_crosscheck_is_close() {
        let (analytic, empirical) = monte_carlo_crosscheck(5, 0.05, 100_000, 3);
        assert!((analytic - empirical).abs() < 0.01);
    }

    #[test]
    fn sim_validation_tracks_analytic_predictions() {
        let (_, cells) = sim_validation(&[3], 0.1, 60, 11);
        let cell = cells[0];
        // With 60 trials the binomial standard error is ~4 points; allow a wide band.
        assert!(
            (cell.analytic - cell.empirical).abs() < 0.12,
            "analytic {} vs empirical {}",
            cell.analytic,
            cell.empirical
        );
    }

    #[test]
    fn every_experiment_id_is_unique() {
        let mut ids = EXPERIMENT_IDS.to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), EXPERIMENT_IDS.len());
    }
}
