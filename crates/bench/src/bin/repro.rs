//! `repro` — regenerates every table and quantitative claim from the paper.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --release --bin repro -- all
//! cargo run -p bench --release --bin repro -- table1 table2 claim-tradeoff
//! cargo run -p bench --release --bin repro -- --list
//! cargo run -p bench --release --bin repro -- --bench   # writes BENCH_analysis.json
//! cargo run -p bench --release --bin repro -- serve     # NDJSON service on stdio
//! cargo run -p bench --release --bin repro -- serve --tcp 127.0.0.1:7878
//! ```

use std::process::ExitCode;
use std::sync::Arc;

/// `repro serve`: the analysis service — NDJSON requests on stdin (or TCP
/// connections), streamed cell records out. See the `repro-server` crate docs
/// for the protocol.
fn run_serve(args: &[String]) -> ExitCode {
    let server = Arc::new(repro_server::Server::new());
    let result = match args {
        [] => repro_server::serve_stdio(&server),
        [flag, addr] if flag == "--tcp" => repro_server::serve_tcp(&server, addr.as_str()),
        _ => {
            eprintln!("usage: repro serve [--tcp ADDR]");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: serve failed: {err}");
            ExitCode::FAILURE
        }
    }
}

/// Times the analysis hot paths and writes the `BENCH_analysis.json` baseline to the
/// current directory.
fn run_bench_baseline() -> ExitCode {
    let budget_ms = std::env::var("REPRO_BENCH_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500);
    let measurements = bench::analysis_benchmarks(budget_ms);
    for m in &measurements {
        println!(
            "{:<32} {:>12.1} ns/iter  ({} iters)",
            m.id, m.mean_ns, m.iters
        );
    }
    let json = bench::benchmarks_to_json(
        &measurements,
        bench::rare_event_sample_efficiency(),
        bench::divergence_smoke(),
        bench::epistemic_interval_width(),
        bench::optimizer_frontier_size(),
    );
    match std::fs::write("BENCH_analysis.json", &json) {
        Ok(()) => {
            println!("\nwrote BENCH_analysis.json");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: could not write BENCH_analysis.json: {err}");
            ExitCode::FAILURE
        }
    }
}

fn run_experiment(id: &str) -> Result<(), String> {
    match id {
        "table1" => println!("{}", bench::table1()),
        "table2" => println!("{}", bench::table2()),
        "claim-three-nines" => println!("{}", bench::claim_three_nines()),
        "claim-cheap-nodes" => {
            let (table, eq) = bench::claim_cheap_nodes();
            println!("{table}");
            println!(
                "Cost reduction: {:.2}x (paper: ~3x with 10x cheaper nodes)\n",
                eq.cost_reduction_factor()
            );
        }
        "claim-quorum-overkill" => println!("{}", bench::claim_quorum_overkill()),
        "claim-heterogeneous" => {
            let (table, _) = bench::claim_heterogeneous();
            println!("{table}");
        }
        "claim-tradeoff" => println!("{}", bench::claim_tradeoff()),
        "claim-durability" => {
            let (table, _) = bench::claim_durability();
            println!("{table}");
        }
        "claim-durability-correlated" => {
            let (table, c) = bench::claim_durability_correlated();
            println!("{table}");
            println!(
                "Independent case: {:.0}x fewer samples than plain Monte Carlo at equal CI width\n",
                c.independent.efficiency_factor()
            );
        }
        "optimize-durability" => {
            let (table, report) = bench::optimize_durability();
            println!("{table}");
            let winner = report
                .cheapest()
                .ok_or("the durability search found no feasible deployment")?;
            println!(
                "Search rediscovered {} at p(loss) = {:.2e} ({} candidates screened, {} refined)\n",
                winner.label,
                winner.failure_probability(),
                report.screened,
                report.refined
            );
        }
        "sim-validation" => {
            let (table, _) = bench::sim_validation(&[3, 5], 0.08, 200, 2026);
            println!("{table}");
        }
        "native-quorum" => println!("{}", bench::native_quorum()),
        "native-leader" => println!("{}", bench::native_leader()),
        "native-committee" => println!("{}", bench::native_committee()),
        "fault-curves" => println!("{}", bench::fault_curves()),
        other => return Err(format!("unknown experiment id '{other}'")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        println!("repro — regenerate the paper's tables and claims\n");
        println!("usage: repro [--list | --bench] <experiment-id>... | all");
        println!("       repro serve [--tcp ADDR]\n");
        println!("experiments:");
        for id in bench::EXPERIMENT_IDS {
            println!("  {id}");
        }
        return ExitCode::SUCCESS;
    }
    if args[0] == "serve" {
        return run_serve(&args[1..]);
    }
    if args.iter().any(|a| a == "--bench") {
        if args.len() > 1 {
            eprintln!("error: --bench cannot be combined with other arguments");
            eprintln!("run the experiments and the baseline as separate invocations");
            return ExitCode::FAILURE;
        }
        return run_bench_baseline();
    }
    if args.iter().any(|a| a == "--list") {
        for id in bench::EXPERIMENT_IDS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        bench::EXPERIMENT_IDS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        println!("=== {id} ===");
        if let Err(err) = run_experiment(id) {
            eprintln!("error: {err}");
            eprintln!("run with --list to see the available experiments");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
