//! Quickstart: compute the probabilistic guarantee of a consensus deployment.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The paper's headline observation: an f-threshold protocol like Raft claims to be
//! "safe and live with up to f faults", but once per-node failure probabilities are
//! acknowledged, a three-node cluster at a 1% annual failure rate is only ~99.97% safe
//! and live — and nine much flakier nodes can match it.

use prob_consensus::analyzer::analyze_auto;
use prob_consensus::deployment::Deployment;
use prob_consensus::engine::Budget;
use prob_consensus::pbft_model::PbftModel;
use prob_consensus::raft_model::RaftModel;
use prob_consensus::report::Table;

fn main() {
    let budget = Budget::default();

    // 1. Describe the deployment: three nodes, each with a 1% chance of crashing over
    //    the mission window (a year, say).
    let deployment = Deployment::uniform_crash(3, 0.01);

    // 2. Pick the protocol model (Theorem 3.2 for Raft with majority quorums).
    let raft = RaftModel::standard(3);

    // 3. Analyze — the engine (exact counting here) is selected automatically.
    let outcome = analyze_auto(&raft, &deployment, &budget);
    let report = outcome.report;
    println!("Raft, N=3, p_u=1%  [engine: {}]:", outcome.engine);
    println!("  safe          : {}", report.safe);
    println!("  live          : {}", report.live);
    println!(
        "  safe and live : {}  ({:.2} nines)\n",
        report.safe_and_live,
        report.safe_and_live.nines()
    );

    // 4. The same analysis across cluster sizes and fault rates (Table 2 of the paper).
    let mut table = Table::new(
        "Raft safe-and-live probability",
        &["N", "p=1%", "p=2%", "p=4%", "p=8%"],
    );
    for n in [3usize, 5, 7, 9] {
        let mut row = vec![n.to_string()];
        for p in [0.01, 0.02, 0.04, 0.08] {
            let r = analyze_auto(
                &RaftModel::standard(n),
                &Deployment::uniform_crash(n, p),
                &budget,
            )
            .report;
            row.push(r.safe_and_live.as_percent());
        }
        table.push_row(row);
    }
    println!("{table}");

    // 5. BFT protocols are probabilistic too (Table 1 of the paper).
    let pbft = analyze_auto(
        &PbftModel::standard(4),
        &Deployment::uniform_byzantine(4, 0.01),
        &budget,
    )
    .report;
    println!("PBFT, N=4, p_u=1%: safe {} / live {}", pbft.safe, pbft.live);

    // 6. The headline equivalence: nine cheap 8% nodes match three reliable 1% nodes.
    let nine_cheap = analyze_auto(
        &RaftModel::standard(9),
        &Deployment::uniform_crash(9, 0.08),
        &budget,
    )
    .report;
    println!(
        "\n3 nodes @ 1% -> {} | 9 nodes @ 8% -> {}",
        report.safe_and_live, nine_cheap.safe_and_live
    );
}
