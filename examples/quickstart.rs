//! Quickstart: sweep the probabilistic guarantees of consensus deployments.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The paper's headline observation: an f-threshold protocol like Raft claims to be
//! "safe and live with up to f faults", but once per-node failure probabilities are
//! acknowledged, a three-node cluster at a 1% annual failure rate is only ~99.97% safe
//! and live — and nine much flakier nodes can match it. The paper's deliverable is
//! *tables* of such numbers, so the front door here is sweep-native: describe the
//! axes once, plan, execute, and render — to a plain-text table or to JSON.

use fault_model::markov::RepairableGroup;
use fault_model::metrics::HOURS_PER_YEAR;
use prob_consensus::engine::Budget;
use prob_consensus::query::{
    AnalysisSession, CorrelationSpec, FaultAxis, Metrics, ProtocolSpec, Query, TimeAxis,
};

fn main() {
    // One session amortizes engine selection and kernel setup across every query.
    let session = AnalysisSession::new();

    // 1. A single cell is just a 1x1x1 grid: three Raft nodes, each with a 1%
    //    chance of crashing over the mission window (a year, say).
    let report = session
        .run(
            &Query::new()
                .protocols([ProtocolSpec::Raft])
                .nodes([3usize])
                .fault_probs([0.01]),
        )
        .expect("well-formed query");
    let cell = report.cell(0);
    println!(
        "Raft, N=3, p_u=1%  [engine: {}]: {}\n",
        cell.engine, cell.outcome.report
    );

    // 2. The same analysis across cluster sizes and fault rates (Table 2 of the
    //    paper) — one planned batch instead of a hand-rolled double loop.
    let table2 = session
        .run(
            &Query::new()
                .protocols([ProtocolSpec::Raft])
                .nodes([3usize, 5, 7, 9])
                .fault_probs([0.01, 0.02, 0.04, 0.08])
                .metrics(Metrics {
                    safe: false,
                    live: false,
                    safe_and_live: true,
                }),
        )
        .expect("well-formed query");
    println!(
        "{}",
        table2.to_table("Raft safe-and-live probability (Table 2)")
    );

    // 3. BFT protocols are probabilistic too (Table 1 of the paper).
    let pbft = session
        .run(
            &Query::new()
                .protocols([ProtocolSpec::Pbft])
                .nodes([4usize, 5, 7, 8])
                .fault_probs([0.01])
                .faults(FaultAxis::Byzantine),
        )
        .expect("well-formed query");
    println!("{}", pbft.to_table("PBFT reliability, p_u = 1% (Table 1)"));

    // 4. Correlation is an axis like any other: the same Raft sweep with a 1%
    //    whole-cluster shock next to the independent baseline. The planner routes
    //    independent cells to the exact counting engine and correlated cells to
    //    the packed Monte Carlo kernel — visible in the engine column.
    let correlated = session
        .run(
            &Query::new()
                .protocols([ProtocolSpec::Raft])
                .nodes([5usize])
                .fault_probs([0.01, 0.08])
                .correlations([
                    CorrelationSpec::Independent,
                    CorrelationSpec::ClusterShock { probability: 0.01 },
                ])
                .budget(Budget::default().with_samples(100_000)),
        )
        .expect("well-formed query");
    println!(
        "{}",
        correlated.to_table("Correlated vs independent (N = 5)")
    );

    // 5. Reports serialize: the same result set as JSON, with full f64 round-trip
    //    precision on every probability (non-finite values would become null).
    println!(
        "JSON dump of the correlated sweep:\n{}",
        correlated.to_json()
    );

    // 6. The headline equivalence: nine cheap 8% nodes match three reliable 1%
    //    nodes — two cells read straight out of the Table 2 report (grid order:
    //    N-axis outer, p-axis inner).
    let three_good = table2.cell(0); // N=3, p=1%
    let nine_cheap = table2.cell(15); // N=9, p=8%
    println!(
        "\n3 nodes @ 1% -> {} | 9 nodes @ 8% -> {}",
        three_good.outcome.report.safe_and_live, nine_cheap.outcome.report.safe_and_live
    );

    // 7. Reliability is a function of *time*, not a constant: a repairable 5-node
    //    group (one failure per ~10k node-hours, ~10-hour repairs) analysed as a
    //    Markov chain — first-passage reliability along a 10-year axis, plus the
    //    operator numbers: steady-state quorum availability, mean time until a
    //    third node is down simultaneously, unavailability minutes per year.
    let time_domain = session
        .run(
            &Query::new()
                .time_horizon(
                    TimeAxis::new(10.0 * HOURS_PER_YEAR, 2.0 * HOURS_PER_YEAR)
                        .with_target_nines(3.0),
                )
                .repairable_cell("raft-5 repairable", RepairableGroup::new(5, 1e-4, 0.1, 2)),
        )
        .expect("well-formed time-domain query");
    println!(
        "\n{}",
        time_domain.to_trajectory_table("Time domain (repairable fleet)")
    );
    let record = time_domain.trajectory(0);
    println!(
        "R(2y) = {:.6}, dips below 3 nines at: {:?} hours",
        record.points[1].probability, record.first_below_target_hours
    );
}
