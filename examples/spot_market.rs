//! Cost- and carbon-aware deployment search over a spot-market style catalogue.
//!
//! ```text
//! cargo run --example spot_market
//! ```
//!
//! §3.2 of the paper: "if reliability is proportional to pricing (e.g., Spot instances),
//! this could yield 3x lower cost. Hardware operators can thus use this analysis to pick
//! the most sustainable, affordable, and/or performant hardware with no reliability
//! trade-off." This example searches the default instance catalogue for the cheapest and
//! lowest-carbon Raft deployment meeting a reliability target.

use prob_consensus::cost::{cheapest_deployment, cost_equivalence, default_catalogue, Objective};
use prob_consensus::query::{AnalysisSession, Metrics, ProtocolSpec, Query};
use prob_consensus::raft_model::RaftModel;
use prob_consensus::report::Table;

fn main() {
    let catalogue = default_catalogue();
    let mut listing = Table::new(
        "Instance catalogue",
        &[
            "Type",
            "Annual failure rate",
            "$ / node-hour",
            "gCO2e / node-hour",
        ],
    );
    for i in &catalogue {
        listing.push_row(vec![
            i.name.clone(),
            format!("{:.0}%", i.fault_probability * 100.0),
            format!("{:.2}", i.hourly_cost),
            format!("{:.0}", i.carbon_per_hour),
        ]);
    }
    println!("{listing}");

    // Survey the whole (instance reliability x cluster size) space as one planned
    // sweep before searching: the fault-probability axis is read straight off the
    // catalogue, and every cell runs through the exact counting engine.
    let session = AnalysisSession::new();
    let survey = session
        .run(
            &Query::new()
                .protocols([ProtocolSpec::Raft])
                .nodes([3usize, 5, 7, 9, 11])
                .fault_probs(catalogue.iter().map(|i| i.fault_probability))
                .metrics(Metrics {
                    safe: false,
                    live: false,
                    safe_and_live: true,
                }),
        )
        .expect("well-formed catalogue sweep");
    println!(
        "{}",
        survey.to_table("Raft safe-and-live across the catalogue (sweep)")
    );

    let mut results = Table::new(
        "Cheapest Raft deployment meeting a target (clusters up to 11 nodes)",
        &[
            "Target nines",
            "Objective",
            "Choice",
            "S&L",
            "$ / hour",
            "gCO2e / hour",
        ],
    );
    for target in [3.0f64, 4.0, 5.0] {
        for (label, objective) in [("cost", Objective::Cost), ("carbon", Objective::Carbon)] {
            match cheapest_deployment(&catalogue, 11, target, objective, RaftModel::standard) {
                Some(option) => results.push_row(vec![
                    format!("{target:.0}"),
                    label.to_string(),
                    format!("{} x {}", option.n, option.instance.name),
                    option.report.safe_and_live.as_percent(),
                    format!("{:.2}", option.hourly_cost),
                    format!("{:.0}", option.carbon_per_hour),
                ]),
                None => results.push_row(vec![
                    format!("{target:.0}"),
                    label.to_string(),
                    "no feasible deployment".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]),
            }
        }
    }
    println!("{results}");

    // The paper's explicit comparison: 3 reliable on-demand nodes vs 9 spot nodes.
    let eq = cost_equivalence(&catalogue[0], &catalogue[1], 3, 9, RaftModel::standard);
    println!(
        "3 x {} = {} at ${:.2}/h  vs  9 x {} = {} at ${:.2}/h  ({:.2}x cheaper)",
        eq.baseline.instance.name,
        eq.baseline.report.safe_and_live,
        eq.baseline.hourly_cost,
        eq.alternative.instance.name,
        eq.alternative.report.safe_and_live,
        eq.alternative.hourly_cost,
        eq.cost_reduction_factor(),
    );
}
