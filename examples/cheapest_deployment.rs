//! The paper's payoff question, answered by search: "what is the *cheapest*
//! deployment that meets k nines?"
//!
//! ```text
//! cargo run --example cheapest_deployment
//! ```
//!
//! Two searches over a [`prob_consensus::optimize::DeploymentSpace`]:
//!
//! 1. **Consensus**: the cheapest Raft cluster meeting three nines of combined
//!    safety and liveness, over the default instance catalogue × cluster sizes
//!    3–9 — every candidate resolves exactly through the counting engine at
//!    tier 1, and the Pareto frontier shows what each extra nine costs.
//! 2. **Durability**: the `claim-durability-correlated` experiment generalized
//!    from a hand-picked comparison into an automated search — 100 spot nodes
//!    across 10 racks with correlated rack shocks, quorum placement as a search
//!    axis. The optimizer rediscovers cross-rack placement as the only feasible
//!    deployment at eight nines (~8 orders of magnitude beyond same-rack),
//!    refining the deep-tail candidate with importance sampling at tier 2.

use prob_consensus::cost::default_catalogue;
use prob_consensus::optimize::{
    optimize, DeploymentSpace, FailureDomains, NodeType, OptimizerConfig, Placement, RepairPolicy,
    TargetSpec,
};
use prob_consensus::query::{AnalysisSession, ProtocolSpec};

fn main() {
    let session = AnalysisSession::new();

    // 1. Cheapest 3-nines Raft cluster, with tier-3 time-domain scoring: the
    // frontier carries unavailability-minutes-per-year next to mission nines.
    let consensus_space = DeploymentSpace {
        instances: default_catalogue()
            .iter()
            .map(NodeType::from_instance)
            .collect(),
        nodes: vec![3, 5, 7, 9],
        domains: None,
        placements: Vec::new(),
        target: TargetSpec::Protocol(ProtocolSpec::Raft),
    };
    let config = OptimizerConfig::new(3.0).with_repair(RepairPolicy {
        mttr_hours: 12.0,
        mission_hours: fault_model::metrics::HOURS_PER_YEAR,
    });
    let report = optimize(&session, &consensus_space, &config).expect("well-formed space");
    println!("{}", report.to_table());
    let best = report.cheapest().expect("the catalogue reaches 3 nines");
    println!(
        "Cheapest 3-nines consensus: {} at ${:.2}/h ({} nines)\n",
        best.label, best.hourly_cost, best.nines as i64
    );

    // 2. The correlated-durability search: placement across failure domains as
    // a first-class axis. Same grid the hand-picked experiment used.
    let durability_space = DeploymentSpace {
        instances: vec![NodeType::new("spot", 0.10, 0.10)],
        nodes: vec![100],
        domains: Some(FailureDomains {
            racks: 10,
            shock_probability: 0.01,
        }),
        placements: vec![Placement::SameRack, Placement::CrossRack],
        target: TargetSpec::PersistenceQuorum { quorum_size: 10 },
    };
    let config = OptimizerConfig::new(8.0)
        .with_screen_samples(20_000)
        .with_refine_samples(80_000)
        .with_seed(2026);
    let report = optimize(&session, &durability_space, &config).expect("well-formed space");
    println!("{}", report.to_table());
    for record in &report.evaluated {
        println!(
            "  {:<28} engine={:<18} tier={} p(loss)={:.3e} feasible={}",
            record.label,
            record.engine.to_string(),
            record.tier,
            record.failure_probability(),
            record.feasible
        );
    }
    let winner = report.cheapest().expect("cross-rack placement is feasible");
    assert_eq!(winner.placement, Some(Placement::CrossRack));
    println!(
        "\nThe search rediscovers cross-rack placement: p(loss) {:.2e} vs same-rack {:.2e}",
        winner.failure_probability(),
        report
            .evaluated
            .iter()
            .find(|r| r.placement == Some(Placement::SameRack))
            .map_or(f64::NAN, |r| r.failure_probability()),
    );
}
