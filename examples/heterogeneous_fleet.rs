//! From telemetry to probability-native configuration for a heterogeneous fleet.
//!
//! ```text
//! cargo run --example heterogeneous_fleet
//! ```
//!
//! The full pipeline the paper envisions: (1) estimate per-class fault rates from fleet
//! telemetry (here: a synthetic stand-in for Backblaze-style drive stats), (2) build a
//! deployment from the estimated fault curves, (3) quantify the probabilistic guarantee,
//! and (4) apply the probability-native mechanisms of §4 — reliability-aware quorum
//! placement, leader ranking, and preemptive replacement planning.

use std::sync::Arc;

use fault_model::metrics::HOURS_PER_YEAR;
use fault_model::mode::FaultProfile;
use fault_model::telemetry::{ClassSpec, TelemetryEstimator, TelemetryGenerator};
use prob_consensus::deployment::Deployment;
use prob_consensus::heterogeneity::{durability_under_policy, QuorumPolicy};
use prob_consensus::leader::{leader_failure_probability, rank_leaders, LeaderPolicy};
use prob_consensus::protocol::ProtocolModel;
use prob_consensus::query::{AnalysisSession, Query};
use prob_consensus::raft_model::RaftModel;
use prob_consensus::report::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Synthetic fleet telemetry: two hardware classes with very different health.
    let telemetry = TelemetryGenerator::new(vec![
        ClassSpec::simple("gen9-reliable", 8_000, 0.01),
        ClassSpec::simple("gen4-flaky", 8_000, 0.08),
    ])
    .generate(&mut StdRng::seed_from_u64(2026));
    let estimator = TelemetryEstimator::new();

    let mut estimates = Table::new(
        "Estimated annual failure rates (synthetic telemetry)",
        &["Class", "AFR", "95% CI", "Device-years"],
    );
    let mut class_afr = Vec::new();
    for class in telemetry.classes() {
        let est = estimator
            .estimate_afr(&telemetry.for_class(&class))
            .expect("telemetry is non-empty");
        estimates.push_row(vec![
            class.clone(),
            format!("{:.2}%", est.afr * 100.0),
            format!("[{:.2}%, {:.2}%]", est.lower * 100.0, est.upper * 100.0),
            format!("{:.0}", est.device_years),
        ]);
        class_afr.push((class, est.afr));
    }
    println!("{estimates}");

    // 2. A 7-node cluster drawn from the fleet: 4 flaky nodes, 3 reliable nodes.
    let flaky = class_afr
        .iter()
        .find(|(c, _)| c.contains("flaky"))
        .unwrap()
        .1;
    let reliable = class_afr
        .iter()
        .find(|(c, _)| c.contains("reliable"))
        .unwrap()
        .1;
    let mut profiles = vec![FaultProfile::crash_only(flaky); 4];
    profiles.extend(vec![FaultProfile::crash_only(reliable); 3]);
    let deployment = Deployment::from_profiles(profiles);

    // 3. The probabilistic guarantee of plain Raft on this fleet. Heterogeneous
    //    deployments do not fit a uniform grid axis, so they go in as an explicit
    //    query cell (engine still auto-selected at plan time).
    let session = AnalysisSession::new();
    let model: Arc<dyn ProtocolModel + Send + Sync> = Arc::new(RaftModel::standard(7));
    let analysis = session
        .run(&Query::new().cell("mixed-fleet", model, deployment.clone()))
        .expect("well-formed fleet cell");
    println!(
        "7-node Raft on the mixed fleet: {}  [engine: {}]\n",
        analysis.cell(0).outcome.report,
        analysis.cell(0).engine
    );

    // 4a. Reliability-aware quorum placement (the §3.2 durability example).
    let mut durability = Table::new(
        "Durability of a 4-node persistence quorum under different placement policies",
        &["Policy", "Durability"],
    );
    for (label, policy) in [
        ("oblivious (worst case)", QuorumPolicy::ObliviousWorstCase),
        (
            "require one reliable node",
            QuorumPolicy::RequireReliable(1),
        ),
        ("most reliable nodes", QuorumPolicy::MostReliable),
    ] {
        durability.push_row(vec![
            label.to_string(),
            durability_under_policy(&deployment, 4, policy).as_percent(),
        ]);
    }
    println!("{durability}");

    // 4b. Reliability-aware leader ranking.
    let ranking = rank_leaders(&deployment);
    println!("Leader ranking (most reliable first): {:?}", ranking);
    println!(
        "P(leader fails): oblivious {:.3} vs most-reliable {:.3}\n",
        leader_failure_probability(&deployment, LeaderPolicy::Oblivious),
        leader_failure_probability(&deployment, LeaderPolicy::MostReliable),
    );

    // 4c. What the same analysis window looks like a year from now if nothing is replaced
    //     (constant curves here, so unchanged — aging fleets are covered in the
    //     fault-curves experiment of the repro harness).
    let _ = HOURS_PER_YEAR;
}
