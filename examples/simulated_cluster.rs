//! Run the executable protocols on the discrete-event simulator under injected faults.
//!
//! ```text
//! cargo run --example simulated_cluster
//! ```
//!
//! The analysis predicts *probabilities*; this example shows the system the probabilities
//! are about: a Raft cluster surviving a leader crash, a Raft cluster losing liveness
//! when a majority dies, and a PBFT cluster staying safe with an equivocating primary.

use std::sync::Arc;

use consensus_protocols::byzantine::ByzantineBehavior;
use consensus_protocols::harness::{PbftHarness, RaftHarness};
use consensus_protocols::pbft::PbftConfig;
use consensus_protocols::probabilistic::reliability_aware_raft_config;
use consensus_sim::fault::FaultSchedule;
use consensus_sim::network::NetworkConfig;
use consensus_sim::time::SimTime;
use fault_model::mode::FaultProfile;
use prob_consensus::deployment::Deployment;
use prob_consensus::engine::{Budget, SimBudget};
use prob_consensus::protocol::ProtocolModel;
use prob_consensus::query::{AnalysisSession, ProtocolSpec, Query};
use prob_consensus::raft_model::RaftModel;

fn main() {
    // Scenario 1: a healthy 5-node Raft cluster with a reliability-aware leader.
    let profiles = vec![
        FaultProfile::crash_only(0.08),
        FaultProfile::crash_only(0.04),
        FaultProfile::crash_only(0.01),
        FaultProfile::crash_only(0.02),
        FaultProfile::crash_only(0.08),
    ];

    // What the analysis layer predicts for this fleet over the mission window —
    // the probability the scenarios below are samples of.
    let session = AnalysisSession::new();
    let model: Arc<dyn ProtocolModel + Send + Sync> = Arc::new(RaftModel::standard(5));
    let prediction = session
        .run(&Query::new().cell(
            "sim-fleet",
            model,
            Deployment::from_profiles(profiles.clone()),
        ))
        .expect("well-formed fleet cell");
    println!(
        "[analysis]        predicted guarantees: {}",
        prediction.cell(0).outcome.report
    );

    let config = reliability_aware_raft_config(&profiles);
    let mut harness = RaftHarness::with_config(config, NetworkConfig::lan(), 1);
    harness.submit_commands(20);
    let outcome = harness.run_for_millis(3_000);
    println!(
        "[raft healthy]    agreement={} all_committed={} committed={:?} messages={}",
        outcome.agreement,
        outcome.all_committed,
        outcome.committed_lengths,
        outcome.messages_delivered
    );

    // Scenario 2: the leader crashes mid-run; a new leader finishes the workload.
    let schedule = FaultSchedule::none().crash_at(0, SimTime::from_millis(800));
    let mut harness = RaftHarness::new(5, NetworkConfig::lan(), 2).with_faults(&schedule);
    harness.submit_commands(10);
    harness.run_for_millis(700);
    harness.submit_commands(10);
    let outcome = harness.run_for_millis(6_000);
    println!(
        "[raft leader-dies] agreement={} all_committed={} correct={:?}",
        outcome.agreement, outcome.all_committed, outcome.correct_nodes
    );

    // Scenario 3: a majority crashes; safety holds but progress stops (the configuration
    // the analysis counts as "safe but not live").
    let schedule = FaultSchedule::none()
        .crash_at(2, SimTime::from_millis(5))
        .crash_at(3, SimTime::from_millis(5))
        .crash_at(4, SimTime::from_millis(5));
    let mut harness = RaftHarness::new(5, NetworkConfig::lan(), 3).with_faults(&schedule);
    harness.submit_commands(5);
    let outcome = harness.run_for_millis(3_000);
    println!(
        "[raft no-quorum]  agreement={} all_committed={} (expected: true / false)",
        outcome.agreement, outcome.all_committed
    );

    // Scenario 4: PBFT with an equivocating primary — the view change restores progress
    // and the prepare quorum keeps agreement intact.
    let schedule = FaultSchedule::none().byzantine_at(0, SimTime::from_millis(1));
    let mut harness = PbftHarness::with_config(
        PbftConfig::standard(4),
        ByzantineBehavior::Equivocate,
        NetworkConfig::lan(),
        4,
    )
    .with_faults(&schedule);
    harness.submit_commands(5);
    let outcome = harness.run_for_millis(10_000);
    println!(
        "[pbft equivocate] agreement={} all_committed={} correct={:?}",
        outcome.agreement, outcome.all_committed, outcome.correct_nodes
    );

    // Scenario 5: the loop closed — a whole analytic sweep where every cell gets a
    // paired batch of simulation trials, and the report carries per-cell
    // analytic-vs-empirical z-scores. This is the query-API form of what the
    // scenarios above did by hand.
    let validated = session
        .run(
            &Query::new()
                .protocols([ProtocolSpec::Raft])
                .nodes([3usize, 5])
                .fault_probs([0.15])
                .budget(Budget::default().with_seed(17).with_sim(SimBudget {
                    trials: 80,
                    horizon_millis: 2_500,
                    fault_window_millis: 200,
                    commands: 3,
                    ..SimBudget::default()
                }))
                .validate_with_simulation(),
        )
        .expect("well-formed validated sweep");
    println!(
        "\n{}",
        validated.to_table("Analytic vs simulated (80 trials/cell)")
    );
    for cell in validated.cells() {
        let v = cell.validation.expect("raft cells are executable");
        println!(
            "[validated]       {}: analytic {:.4} vs simulated {:.4} (z = {:+.2}, {:.0} msgs/trial)",
            cell.label,
            v.analytic,
            v.simulation.safe_and_live.value,
            v.z_score,
            v.simulation.mean_messages_delivered
        );
    }
}
