//! Integration tests for the sweep-native query API: plan shapes, budget
//! validation, and the JSON serialization contract (round-trip precision,
//! `NaN`/`inf` → `null`).

use std::sync::Arc;

use prob_consensus::analyzer::AnalysisError;
use prob_consensus::deployment::Deployment;
use prob_consensus::durability::PersistenceQuorumModel;
use prob_consensus::engine::{Budget, EngineChoice, InvalidBudget};
use prob_consensus::json::JsonValue;
use prob_consensus::protocol::ProtocolModel;
use prob_consensus::query::{
    logspace, AnalysisSession, CorrelationSpec, Metrics, ProtocolSpec, Query,
};

/// A sweep mixing exact, packed Monte Carlo and importance-sampling cells, small
/// enough for CI: the JSON tests below inspect all three shapes.
fn mixed_report() -> prob_consensus::query::AnalysisReport {
    let rare: Arc<dyn ProtocolModel + Send + Sync> =
        Arc::new(PersistenceQuorumModel::new(24, (0..4).collect()));
    AnalysisSession::new()
        .run(
            &Query::new()
                .protocols([ProtocolSpec::Raft])
                .nodes([5usize])
                .fault_probs([0.02])
                .correlations([
                    CorrelationSpec::Independent,
                    CorrelationSpec::ClusterShock { probability: 0.02 },
                ])
                .budget(Budget::default().with_samples(8_000).with_seed(11))
                .cell("rare", rare, Deployment::uniform_crash(24, 0.05)),
        )
        .expect("well-formed query")
}

#[test]
fn report_json_round_trips_probabilities_bit_exactly() {
    let report = mixed_report();
    let parsed = JsonValue::parse(&report.to_json()).expect("report emits valid JSON");
    let cells = parsed.get("cells").unwrap().as_array().unwrap();
    assert_eq!(cells.len(), report.cells().len());
    for (cell_json, cell) in cells.iter().zip(report.cells()) {
        assert_eq!(
            cell_json.get("label").and_then(JsonValue::as_str),
            Some(cell.label.as_str())
        );
        assert_eq!(
            cell_json.get("engine").and_then(JsonValue::as_str),
            Some(cell.engine.to_string().as_str())
        );
        // Every probability survives the text round trip bit-for-bit (shortest
        // f64 representation — the serializer's contract).
        for (key, truth) in [
            ("safe", cell.outcome.report.safe.probability()),
            ("live", cell.outcome.report.live.probability()),
            (
                "safe_and_live",
                cell.outcome.report.safe_and_live.probability(),
            ),
        ] {
            let value = cell_json
                .get(key)
                .unwrap()
                .get("value")
                .and_then(JsonValue::as_f64)
                .expect("metric value present");
            assert_eq!(
                value.to_bits(),
                truth.to_bits(),
                "{}/{key} drifted through JSON",
                cell.label
            );
        }
        // Interval bounds: null exactly for the exact engines, numbers otherwise.
        let lower = cell_json
            .get("safe_and_live")
            .unwrap()
            .get("lower")
            .unwrap();
        assert_eq!(lower.is_null(), cell.outcome.is_exact(), "{}", cell.label);
        // ESS: a number exactly for importance-sampling cells.
        let ess = cell_json.get("ess").unwrap();
        assert_eq!(
            ess.as_f64().is_some(),
            cell.engine == EngineChoice::ImportanceSampling,
            "{}",
            cell.label
        );
    }
}

#[test]
fn non_finite_values_serialize_as_null() {
    // The serialization policy, end to end: JSON has no NaN/Infinity literal, so
    // the writer emits null and the parser never sees a malformed token.
    for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let doc = JsonValue::Object(vec![("x".into(), JsonValue::number(v))]);
        let rendered = doc.to_string();
        assert!(rendered.contains("null"), "{v} must render as null");
        let parsed = JsonValue::parse(&rendered).expect("valid JSON");
        assert!(parsed.get("x").unwrap().is_null());
    }
    // Finite values stay numbers, including subnormals and negative zero.
    for v in [0.0, -0.0, f64::MIN_POSITIVE / 2.0, 1e308] {
        let back = JsonValue::parse(&JsonValue::number(v).to_string())
            .unwrap()
            .as_f64()
            .unwrap();
        assert_eq!(back.to_bits(), v.to_bits());
    }
}

#[test]
fn plan_selects_engines_up_front_without_executing() {
    let session = AnalysisSession::new();
    let plan = session
        .plan(
            &Query::new()
                .protocols([ProtocolSpec::Raft, ProtocolSpec::Pbft])
                .nodes([5usize])
                .fault_probs(logspace(1e-3, 1e-1, 3)),
        )
        .expect("well-formed query");
    assert_eq!(plan.len(), 6);
    assert!(!plan.is_empty());
    assert!(plan.engines().iter().all(|&e| e == EngineChoice::Counting));
}

#[test]
fn budget_builders_produce_plannable_budgets() {
    // Interior builder values pass the plan-time validator.
    for budget in [
        Budget::default(),
        Budget::default().with_rare_event_tilt(0.0),
        Budget::default().with_rare_event_tilt(12.5),
        Budget::default().with_min_effective_samples(1.0),
        Budget::default().with_rare_event_threshold(0.5),
        Budget::default().with_samples(0),
    ] {
        assert_eq!(budget.validate(), Ok(()), "{budget:?}");
    }
    // The builders' closed boundaries are engine-layer conveniences (threshold 0
    // disables the rare-event engine, 1 always prefers it; ESS floor 0 disables
    // escalation) that the stricter plan-time validator deliberately rejects —
    // the divergence is documented on the builders.
    assert!(Budget::default()
        .with_rare_event_threshold(0.0)
        .validate()
        .is_err());
    assert!(Budget::default()
        .with_rare_event_threshold(1.0)
        .validate()
        .is_err());
    assert!(Budget::default()
        .with_min_effective_samples(0.0)
        .validate()
        .is_err());
}

proptest::proptest! {
    /// Property: `validate` accepts exactly the documented region — tilt 0 or a
    /// finite value ≥ 1, a positive finite ESS floor, a threshold strictly inside
    /// (0, 1) — over a wide sampled space of knob values.
    #[test]
    fn budget_validator_accepts_exactly_the_documented_region(
        tilt in -2.0f64..50.0,
        ess in -10.0f64..1e6,
        threshold in -0.5f64..1.5,
    ) {
        let budget = Budget {
            rare_event_tilt: tilt,
            min_effective_samples: ess,
            rare_event_threshold: threshold,
            ..Budget::default()
        };
        let expected_ok = (tilt == 0.0 || tilt >= 1.0)
            && ess > 0.0
            && threshold > 0.0
            && threshold < 1.0;
        proptest::prop_assert_eq!(budget.validate().is_ok(), expected_ok);
        // The error always names the offending knob and value.
        if let Err(invalid) = budget.validate() {
            let message = invalid.to_string();
            proptest::prop_assert!(
                message.contains("rare_event_tilt")
                    || message.contains("min_effective_samples")
                    || message.contains("rare_event_threshold")
            );
        }
    }

    /// Property: non-finite knob values are always rejected, whichever knob.
    #[test]
    fn budget_validator_rejects_non_finite_knobs(which in 0usize..3, sign in 0usize..2) {
        let bad = if sign == 0 { f64::NAN } else { f64::INFINITY };
        let mut budget = Budget::default();
        match which {
            0 => budget.rare_event_tilt = bad,
            1 => budget.min_effective_samples = bad,
            _ => budget.rare_event_threshold = bad,
        }
        let err = budget.validate().expect_err("non-finite knobs are invalid");
        let expected = match which {
            0 => matches!(err, InvalidBudget::RareEventTilt(_)),
            1 => matches!(err, InvalidBudget::MinEffectiveSamples(_)),
            _ => matches!(err, InvalidBudget::RareEventThreshold(_)),
        };
        proptest::prop_assert!(expected, "wrong variant: {err:?}");
    }
}

#[test]
fn invalid_budget_surfaces_through_the_session_front_door() {
    let session = AnalysisSession::new();
    let budget = Budget {
        rare_event_tilt: -3.0,
        ..Budget::default()
    };
    let err = session
        .plan(
            &Query::new()
                .protocols([ProtocolSpec::Raft])
                .nodes([3usize])
                .fault_probs([0.01])
                .budget(budget),
        )
        .expect_err("negative tilt must not plan");
    assert!(matches!(
        err,
        AnalysisError::InvalidBudget(InvalidBudget::RareEventTilt(t)) if t == -3.0
    ));
    assert!(err.to_string().contains("rare_event_tilt"));
}

#[test]
fn metrics_selection_prunes_json_members() {
    let report = AnalysisSession::new()
        .run(
            &Query::new()
                .protocols([ProtocolSpec::Raft])
                .nodes([3usize])
                .fault_probs([0.01])
                .metrics(Metrics {
                    safe: true,
                    live: false,
                    safe_and_live: false,
                }),
        )
        .expect("well-formed query");
    let parsed = JsonValue::parse(&report.to_json()).unwrap();
    let cell = &parsed.get("cells").unwrap().as_array().unwrap()[0];
    assert!(cell.get("safe").is_some());
    assert!(cell.get("live").is_none());
    assert!(cell.get("safe_and_live").is_none());
}
