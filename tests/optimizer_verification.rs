//! Verification suite for the deployment optimizer (`crates/core/src/optimize.rs`):
//!
//! * **Cross-engine re-scoring** — every emitted frontier candidate is re-scored
//!   with an independently chosen engine (exact winners by Monte Carlo,
//!   importance-sampling winners by a second IS run under a different seed and
//!   by the closed form where one exists) and must agree within 3σ, mirroring
//!   `tests/engine_agreement.rs`.
//! * **Thread-count bit-identity** — the frontier JSON is byte-identical at
//!   1/2/8 threads.
//! * **Cache aliasing** — optimizer scratch lives in its own key namespace:
//!   warming it never perturbs first-order or epistemic results sharing the
//!   same session, and the same content produces distinct cache entries per
//!   namespace.
//! * **Golden regression** — the automated search over the
//!   `claim-durability-correlated` space reproduces the known ranking
//!   (cross-rack ≻ same-rack) and the orders-of-magnitude gap.

use prob_consensus::engine::{
    AnalysisEngine, Budget, EngineChoice, ImportanceSamplingEngine, MonteCarloEngine, Scenario,
};
use prob_consensus::optimize::{
    optimize, Candidate, DeploymentSpace, FailureDomains, NodeType, OptimizeReport,
    OptimizerConfig, Placement, TargetSpec,
};
use prob_consensus::query::{AnalysisSession, ProtocolSpec, Query};

/// Drops the `wall_ns` timing lines from a report's JSON so runs can be
/// compared on results alone.
fn strip_wall_ns(json: &str) -> String {
    json.lines()
        .filter(|line| !line.trim_start().starts_with("\"wall_ns\""))
        .collect::<Vec<_>>()
        .join("\n")
}

/// The `claim-durability-correlated` space, generalized: the hand-picked
/// same-rack vs cross-rack comparison becomes two candidates of one search.
/// N = 100 spot nodes at p = 10% across 10 racks with 1% correlated rack
/// shocks, |Q| = 10 — the paper's §2 durability example.
fn durability_space() -> DeploymentSpace {
    DeploymentSpace {
        instances: vec![NodeType::new("spot", 0.10, 0.10)],
        nodes: vec![100],
        domains: Some(FailureDomains {
            racks: 10,
            shock_probability: 0.01,
        }),
        placements: vec![Placement::SameRack, Placement::CrossRack],
        target: TargetSpec::PersistenceQuorum { quorum_size: 10 },
    }
}

fn durability_config() -> OptimizerConfig {
    OptimizerConfig::new(8.0)
        .with_screen_samples(20_000)
        .with_refine_samples(80_000)
        .with_seed(2026)
}

fn durability_report(session: &AnalysisSession) -> OptimizeReport {
    optimize(session, &durability_space(), &durability_config()).expect("well-formed space")
}

/// Closed-form data-loss probability of one durability candidate under the
/// Marshall–Olkin rack-shock construction. Cross-rack members sit in distinct
/// racks, so their effective fault events are independent; same-rack members
/// share rack 0's shock.
fn closed_form_loss(candidate: &Candidate, p: f64, shock: f64) -> f64 {
    let q = 10;
    match candidate.placement {
        Some(Placement::CrossRack) => (1.0 - (1.0 - p) * (1.0 - shock)).powi(q),
        Some(Placement::SameRack) => shock + (1.0 - shock) * p.powi(q),
        None => unreachable!("the durability space always places its quorum"),
    }
}

#[test]
fn golden_durability_search_rediscovers_cross_rack_placement() {
    let session = AnalysisSession::new();
    let report = durability_report(&session);
    assert_eq!(report.screened, 2);

    // The frontier is exactly the cross-rack candidate, refined by importance
    // sampling at tier 2.
    assert_eq!(report.frontier.len(), 1);
    let winner = &report.frontier[0];
    assert_eq!(winner.placement, Some(Placement::CrossRack));
    assert_eq!(winner.engine, EngineChoice::ImportanceSampling);
    assert_eq!(winner.tier, 2);
    assert!(winner.feasible && winner.nines_lower >= 8.0);

    // Same-rack stays a cheap tier-1 Monte Carlo reject: its ~1e-2 loss is
    // nowhere near the deep tail, so no refinement budget is spent on it.
    let loser = report
        .candidate("spot/N=100/same-rack")
        .expect("the losing placement is still reported");
    assert_eq!(loser.engine, EngineChoice::MonteCarlo);
    assert_eq!(loser.tier, 1);
    assert!(!loser.feasible);

    // The paper's orders-of-magnitude gap between the placements, pinned with
    // tolerances: exact values are ~1.05e-2 vs ~2.4e-10 (almost 8 orders).
    let gap = loser.failure_probability() / winner.failure_probability();
    assert!(gap > 1e6, "placement gap collapsed: {gap:.3e}");
    assert!(
        (loser.failure_probability() - 1.05e-2).abs() < 2e-3,
        "same-rack loss {:.3e}",
        loser.failure_probability()
    );
    assert!(
        winner.failure_probability() < 1e-9,
        "cross-rack loss {:.3e}",
        winner.failure_probability()
    );
}

#[test]
fn frontier_candidates_re_scored_by_independent_engines_within_three_sigma() {
    let session = AnalysisSession::new();

    // Exact (counting) frontier from the catalogue space, re-checked by Monte
    // Carlo: the exact value must sit within 3σ of the independent estimate.
    let space = DeploymentSpace {
        instances: prob_consensus::cost::default_catalogue()
            .iter()
            .map(NodeType::from_instance)
            .collect(),
        nodes: vec![3, 5, 7, 9],
        domains: None,
        placements: Vec::new(),
        target: TargetSpec::Protocol(ProtocolSpec::Raft),
    };
    let report = optimize(&session, &space, &OptimizerConfig::new(3.0)).unwrap();
    assert!(!report.frontier.is_empty());
    let candidates = space.candidates();
    for record in &report.frontier {
        assert!(record.exact, "catalogue Raft cells resolve exactly");
        let candidate = candidates
            .iter()
            .find(|c| c.label == record.label)
            .expect("every frontier record maps back to a candidate");
        let budget = Budget::default().with_samples(120_000).with_seed(0xA5A5);
        let rescored = MonteCarloEngine.run(
            candidate.model.as_ref(),
            Scenario::Correlated(&candidate.scenario),
            &budget,
        );
        let estimate = rescored.monte_carlo.expect("MC carries estimates");
        let sigma = estimate.safe_and_live.half_width() / 1.96;
        let z = (estimate.safe_and_live.value - record.probability) / sigma.max(1e-12);
        assert!(
            z.abs() <= 3.0,
            "{}: exact {} vs independent MC {} (z = {z:.2})",
            record.label,
            record.probability,
            estimate.safe_and_live.value
        );
    }

    // Importance-sampling frontier from the durability space, re-checked two
    // ways: a second IS run under a different seed (agreement within combined
    // 3σ) and the closed form of the Marshall–Olkin construction.
    let report = durability_report(&session);
    let candidates = durability_space().candidates();
    for record in &report.frontier {
        assert_eq!(record.engine, EngineChoice::ImportanceSampling);
        let candidate = candidates.iter().find(|c| c.label == record.label).unwrap();
        let budget = Budget::default()
            .with_samples(80_000)
            .with_seed(0x0DD_5EED)
            .with_rare_event_threshold(1e-6);
        let rescored = ImportanceSamplingEngine.run(
            candidate.model.as_ref(),
            Scenario::Correlated(&candidate.scenario),
            &budget,
        );
        let estimate = rescored.rare_event.expect("IS carries estimates");
        let sigma_a = ((record.ci_upper - record.ci_lower) / 2.0) / 1.96;
        let sigma_b = estimate.safe_and_live.half_width() / 1.96;
        let combined = (sigma_a * sigma_a + sigma_b * sigma_b).sqrt().max(1e-15);
        let z = (estimate.safe_and_live.value - record.probability) / combined;
        assert!(
            z.abs() <= 3.0,
            "{}: IS({}) vs IS(reseeded) {} (z = {z:.2})",
            record.label,
            record.probability,
            estimate.safe_and_live.value
        );

        let truth = 1.0 - closed_form_loss(candidate, 0.10, 0.01);
        let sigma = sigma_a.max(1e-15);
        let z = (record.probability - truth) / sigma;
        assert!(
            z.abs() <= 3.0,
            "{}: estimate {} vs closed form {truth} (z = {z:.2})",
            record.label,
            record.probability
        );
    }
}

#[test]
fn optimizer_json_is_bit_identical_across_thread_counts() {
    let reference = {
        let session = AnalysisSession::with_threads(1);
        durability_report(&session).to_json()
    };
    assert!(reference.contains("cross-rack"));
    for threads in [2usize, 8] {
        let session = AnalysisSession::with_threads(threads);
        let json = durability_report(&session).to_json();
        assert_eq!(
            json, reference,
            "optimizer JSON diverged at {threads} threads"
        );
    }
}

#[test]
fn optimizer_scratch_never_perturbs_first_order_or_epistemic_results() {
    // The aliasing regression, behavioral form. One candidate's (model,
    // scenario) pair is scored three ways — first-order cell, epistemic cell,
    // optimizer candidate — in both orders. If optimizer scratch keys collided
    // with either namespace, the warmed pilots/proposals (learned under
    // optimizer budgets) would leak into the other paths and shift their
    // results; byte-equal JSON proves isolation.
    let space = DeploymentSpace {
        instances: vec![NodeType::new("spot", 0.08, 0.10)],
        nodes: vec![6],
        domains: None,
        placements: Vec::new(),
        target: TargetSpec::PersistenceQuorum { quorum_size: 3 },
    };
    let candidate = &space.candidates()[0];
    let first_order = Query::new().cell_correlated(
        "first-order",
        candidate.model.clone(),
        candidate.scenario.clone(),
    );
    let epistemic = Query::new()
        .cell_correlated(
            "epistemic",
            candidate.model.clone(),
            candidate.scenario.clone(),
        )
        .posterior(4, 2.0, 50.0);
    let config = OptimizerConfig::new(2.0);

    // Cold: first-order and epistemic before any optimizer run. Timing lines
    // are stripped — only results must match.
    let cold = AnalysisSession::new();
    let cold_first = strip_wall_ns(&cold.run(&first_order).unwrap().to_json());
    let cold_epistemic = strip_wall_ns(&cold.run(&epistemic).unwrap().to_json());

    // Warm: the optimizer runs first (same content, its own namespace).
    let warm = AnalysisSession::new();
    optimize(&warm, &space, &config).unwrap();
    let entries_after_optimize = warm.cache_stats().entries;
    let warm_first = strip_wall_ns(&warm.run(&first_order).unwrap().to_json());
    let warm_epistemic = strip_wall_ns(&warm.run(&epistemic).unwrap().to_json());

    assert_eq!(
        cold_first, warm_first,
        "optimizer scratch leaked into first-order cells"
    );
    assert_eq!(
        cold_epistemic, warm_epistemic,
        "optimizer scratch leaked into epistemic cells"
    );
    // And the namespaces really are distinct entries, not a shared group: the
    // first-order run after the optimizer added a new scratch group for the
    // same content.
    assert!(
        warm.cache_stats().entries > entries_after_optimize,
        "first-order scratch reused the optimizer's cache entry"
    );
}

#[test]
fn repeated_searches_reuse_the_session_cache() {
    // Same space, same seeds: the second search must be all hits (pilots,
    // proposals and packed kernels come back from the optimizer namespace).
    let session = AnalysisSession::new();
    durability_report(&session);
    let misses_after_first = session.cache_stats().misses;
    let report = durability_report(&session);
    assert_eq!(session.cache_stats().misses, misses_after_first);
    assert!(session.cache_stats().hits > 0);
    assert_eq!(report.frontier.len(), 1);
}
