//! Property-based verification of the deployment optimizer's frontier
//! invariants (`crates/core/src/optimize.rs`):
//!
//! * the returned frontier is Pareto non-dominated,
//! * sorted by ascending cost (strictly — ties are resolved before emission),
//! * every frontier member meets the claimed nines per its own CI lower bound,
//! * and adding budget never *removes* a feasible frontier point.
//!
//! Randomized spaces stick to counting-exact Raft grids so the properties are
//! deterministic facts about the search logic, not flaky statements about
//! sampling noise; one fixed-seed Monte Carlo case pins the sampling side.

use prob_consensus::optimize::{
    optimize, DeploymentSpace, FailureDomains, NodeType, OptimizerConfig, Placement, TargetSpec,
};
use prob_consensus::query::{AnalysisSession, ProtocolSpec};
use proptest::prelude::*;

/// A randomized Raft deployment space: 1–3 catalogue entries with fault
/// probabilities spread over two orders of magnitude and prices over three,
/// crossed with 1–3 odd cluster sizes — every candidate counting-exact.
fn arb_space() -> impl Strategy<Value = DeploymentSpace> {
    (
        proptest::collection::vec((1u32..80, 1u32..1_000), 1..4),
        proptest::collection::vec(1usize..6, 1..4),
    )
        .prop_map(|(instances, node_steps)| DeploymentSpace {
            instances: instances
                .into_iter()
                .enumerate()
                .map(|(i, (fault_milli, price_milli))| {
                    NodeType::new(
                        format!("type-{i}"),
                        f64::from(fault_milli) / 1_000.0,
                        f64::from(price_milli) / 100.0,
                    )
                })
                .collect(),
            // Odd sizes 3..=11: all counting-exact through RaftModel.
            nodes: node_steps.into_iter().map(|s| 2 * s + 1).collect(),
            domains: None,
            placements: Vec::new(),
            target: TargetSpec::Protocol(ProtocolSpec::Raft),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No frontier member may dominate another: for any pair, the cheaper one
    /// must have strictly fewer nines and vice versa.
    #[test]
    fn frontier_is_pareto_non_dominated(space in arb_space(), target_deci in 5u32..45) {
        let session = AnalysisSession::new();
        let target = f64::from(target_deci) / 10.0;
        let report = optimize(&session, &space, &OptimizerConfig::new(target)).unwrap();
        for a in &report.frontier {
            for b in &report.frontier {
                if a.label != b.label {
                    prop_assert!(
                        !(b.hourly_cost <= a.hourly_cost && b.nines >= a.nines),
                        "{} (${}, {} nines) dominates {} (${}, {} nines)",
                        b.label, b.hourly_cost, b.nines, a.label, a.hourly_cost, a.nines
                    );
                }
            }
        }
    }

    /// The frontier is sorted by strictly ascending cost and strictly
    /// ascending nines.
    #[test]
    fn frontier_is_sorted_by_cost(space in arb_space(), target_deci in 5u32..45) {
        let session = AnalysisSession::new();
        let target = f64::from(target_deci) / 10.0;
        let report = optimize(&session, &space, &OptimizerConfig::new(target)).unwrap();
        for pair in report.frontier.windows(2) {
            prop_assert!(pair[0].hourly_cost < pair[1].hourly_cost);
            prop_assert!(pair[0].nines < pair[1].nines);
        }
    }

    /// Every frontier member's *conservative* bound — not just its point
    /// estimate — meets the claimed target.
    #[test]
    fn frontier_members_meet_target_per_ci_lower_bound(
        space in arb_space(),
        target_deci in 5u32..45,
    ) {
        let session = AnalysisSession::new();
        let target = f64::from(target_deci) / 10.0;
        let report = optimize(&session, &space, &OptimizerConfig::new(target)).unwrap();
        for record in &report.frontier {
            prop_assert!(record.feasible);
            prop_assert!(
                fault_model::metrics::Nines::from_probability(record.ci_lower).meets(target),
                "{}: ci_lower {} misses {target} nines",
                record.label,
                record.ci_lower
            );
            // The degenerate-interval contract for exact engines.
            if record.exact {
                prop_assert!(record.ci_lower == record.probability);
                prop_assert!(record.ci_upper == record.probability);
            }
        }
    }

    /// Budget monotonicity over exact spaces: raising either tier's sample
    /// budget cannot change — in particular cannot *remove* — any frontier
    /// point, because exact cells ignore the sample knob.
    #[test]
    fn adding_budget_never_removes_exact_frontier_points(
        space in arb_space(),
        target_deci in 5u32..45,
        extra in 1usize..8,
    ) {
        let session = AnalysisSession::new();
        let target = f64::from(target_deci) / 10.0;
        let base = OptimizerConfig::new(target).with_screen_samples(2_000);
        let bigger = base
            .with_screen_samples(2_000 * (1 + extra))
            .with_refine_samples(200_000 * (1 + extra));
        let small = optimize(&session, &space, &base).unwrap();
        let large = optimize(&session, &space, &bigger).unwrap();
        for record in &small.frontier {
            prop_assert!(
                large.frontier.iter().any(|r| r.label == record.label),
                "frontier point {} vanished when the budget grew",
                record.label
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Heterogeneous node types through the same invariants: randomized
    /// per-type profiles with a Byzantine component, PBFT target.
    #[test]
    fn pbft_spaces_hold_the_same_invariants(nodes in proptest::collection::vec(1usize..4, 1..3)) {
        let session = AnalysisSession::new();
        let space = DeploymentSpace {
            instances: vec![
                NodeType::from_profile(
                    "mercurial",
                    fault_model::mode::FaultProfile::new(0.04, 0.0001),
                    0.50,
                ),
                NodeType::new("solid", 0.01, 1.00),
            ],
            nodes: nodes.into_iter().map(|s| 3 * s + 1).collect(),
            domains: None,
            placements: Vec::new(),
            target: TargetSpec::Protocol(ProtocolSpec::Pbft),
        };
        let report = optimize(&session, &space, &OptimizerConfig::new(2.0)).unwrap();
        for pair in report.frontier.windows(2) {
            prop_assert!(pair[0].hourly_cost < pair[1].hourly_cost);
            prop_assert!(pair[0].nines < pair[1].nines);
        }
        prop_assert!(report.frontier.iter().all(|r| r.feasible));
    }
}

/// The sampling half of budget monotonicity, pinned at a fixed seed: a
/// placement-sensitive durability space where the winner is resolved by
/// importance sampling. Feasible frontier points must survive a 4x budget
/// increase (same seeds, tighter intervals).
#[test]
fn sampling_frontier_survives_budget_increase_at_fixed_seed() {
    let session = AnalysisSession::new();
    let space = DeploymentSpace {
        instances: vec![NodeType::new("spot", 0.10, 0.10)],
        nodes: vec![40],
        domains: Some(FailureDomains {
            racks: 8,
            shock_probability: 0.01,
        }),
        placements: vec![Placement::SameRack, Placement::CrossRack],
        target: TargetSpec::PersistenceQuorum { quorum_size: 5 },
    };
    // Cross-rack loss is ~(p + shock)^5 ≈ 1.6e-5 (~4.8 nines): feasible at 4
    // nines, deep enough that the refinement tier resolves it by sampling.
    let base = OptimizerConfig::new(4.0)
        .with_screen_samples(10_000)
        .with_refine_samples(40_000)
        .with_seed(7);
    let small = optimize(&session, &space, &base).unwrap();
    let large = optimize(
        &session,
        &space,
        &base
            .with_screen_samples(40_000)
            .with_refine_samples(160_000),
    )
    .unwrap();
    assert!(
        !small.frontier.is_empty(),
        "cross-rack placement reaches 4 nines"
    );
    for record in &small.frontier {
        assert!(
            large.frontier.iter().any(|r| r.label == record.label),
            "sampling frontier point {} vanished when the budget grew",
            record.label
        );
    }
}

/// `evaluated` keeps deterministic grid order and full coverage: every valid
/// candidate shows up exactly once, feasible or not.
#[test]
fn evaluated_covers_the_whole_grid_in_order() {
    let session = AnalysisSession::new();
    let space = DeploymentSpace {
        instances: vec![NodeType::new("a", 0.01, 1.0), NodeType::new("b", 0.08, 0.1)],
        nodes: vec![3, 5],
        domains: None,
        placements: Vec::new(),
        target: TargetSpec::Protocol(ProtocolSpec::Raft),
    };
    let report = optimize(&session, &space, &OptimizerConfig::new(3.0)).unwrap();
    let labels: Vec<&str> = report.evaluated.iter().map(|r| r.label.as_str()).collect();
    assert_eq!(labels, ["a/N=3", "a/N=5", "b/N=3", "b/N=5"]);
    assert_eq!(report.screened, 4);
}
