//! Integration tests validating the analytic predictions against the executable
//! protocols running on the discrete-event simulator.

use consensus_protocols::harness::{PbftHarness, RaftHarness};
use consensus_protocols::raft::RaftConfig;
use consensus_sim::fault::FaultSchedule;
use consensus_sim::network::NetworkConfig;
use consensus_sim::time::SimTime;
use prob_consensus::analyzer::analyze_auto;
use prob_consensus::deployment::Deployment;
use prob_consensus::engine::Budget;
use prob_consensus::protocol::ProtocolModel;
use prob_consensus::raft_model::RaftModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The analysis says a failure configuration with at most `N - Q_per` crashes is live:
/// drive the real protocol through explicit configurations on both sides of the line.
#[test]
fn raft_liveness_boundary_matches_theorem_3_2() {
    // 5 nodes, majority 3: up to 2 crashes keep the cluster live, 3 crashes do not.
    for crashes in 0..=3usize {
        let mut schedule = FaultSchedule::none();
        for node in 0..crashes {
            schedule = schedule.crash_at(node, SimTime::from_millis(1));
        }
        let mut harness =
            RaftHarness::new(5, NetworkConfig::lan(), 100 + crashes as u64).with_faults(&schedule);
        harness.submit_commands(5);
        let outcome = harness.run_for_millis(5_000);
        assert!(
            outcome.agreement,
            "{crashes} crashes must never break agreement"
        );
        let model = RaftModel::standard(5);
        let analytic_live = model.is_live(&prob_consensus::failure::FailureConfig::with_crashed(
            5,
            &(0..crashes).collect::<Vec<_>>(),
        ));
        assert_eq!(
            outcome.all_committed, analytic_live,
            "{crashes} crashes: simulation and Theorem 3.2 disagree"
        );
    }
}

/// PBFT with the standard N = 3f+1 layout: f silent Byzantine nodes keep the system safe
/// and live, f+1 cost liveness, and agreement holds in both cases (Theorem 3.1).
#[test]
fn pbft_fault_boundary_matches_theorem_3_1() {
    for byzantine in [1usize, 2] {
        let mut schedule = FaultSchedule::none();
        for node in 0..byzantine {
            schedule = schedule.byzantine_at(node, SimTime::from_millis(1));
        }
        let mut harness = PbftHarness::new(4, NetworkConfig::lan(), 200 + byzantine as u64)
            .with_faults(&schedule);
        harness.submit_commands(4);
        let outcome = harness.run_for_millis(6_000);
        assert!(
            outcome.agreement,
            "{byzantine} silent Byzantine nodes broke agreement"
        );
        let expected_live = byzantine <= 1;
        assert_eq!(
            outcome.all_committed, expected_live,
            "{byzantine} Byzantine nodes: liveness mismatch"
        );
    }
}

/// Monte Carlo over the executable protocol: the empirical safe-and-live rate under
/// randomly sampled fault configurations tracks the analytic probability.
#[test]
fn empirical_safe_and_live_rate_tracks_analysis() {
    let n = 3;
    let p = 0.2; // Deliberately high so the empirical rate is resolvable with few trials.
    let deployment = Deployment::uniform_crash(n, p);
    let analytic = analyze_auto(&RaftModel::standard(n), &deployment, &Budget::default())
        .report
        .safe_and_live
        .probability();
    let trials = 60;
    let mut rng = StdRng::seed_from_u64(7);
    let mut ok = 0;
    for trial in 0..trials {
        let schedule = FaultSchedule::sample_from_profiles(
            deployment.profiles(),
            SimTime::from_millis(100),
            &mut rng,
        );
        let mut harness =
            RaftHarness::with_config(RaftConfig::standard(n), NetworkConfig::lan(), 5_000 + trial)
                .with_faults(&schedule);
        harness.submit_commands(2);
        if harness.run_for_millis(2_000).safe_and_live() {
            ok += 1;
        }
    }
    let empirical = ok as f64 / trials as f64;
    // Binomial noise with 60 trials is ~±0.11 at p≈0.9; allow a generous band.
    assert!(
        (empirical - analytic).abs() < 0.15,
        "analytic {analytic:.3} vs empirical {empirical:.3}"
    );
}

/// Reliability-aware election priorities do not change correctness, only who leads.
#[test]
fn reliability_aware_leader_selection_preserves_correctness() {
    let profiles = vec![
        fault_model::mode::FaultProfile::crash_only(0.08),
        fault_model::mode::FaultProfile::crash_only(0.01),
        fault_model::mode::FaultProfile::crash_only(0.04),
        fault_model::mode::FaultProfile::crash_only(0.02),
        fault_model::mode::FaultProfile::crash_only(0.03),
    ];
    let config = consensus_protocols::probabilistic::reliability_aware_raft_config(&profiles);
    let mut harness = RaftHarness::with_config(config, NetworkConfig::lan(), 9);
    harness.submit_commands(10);
    let outcome = harness.run_for_millis(3_000);
    assert!(outcome.safe_and_live());
    // The most reliable node (index 1) should have ended up leading.
    use consensus_protocols::raft::Role;
    assert_eq!(harness.sim().node(1).role(), Role::Leader);
}

/// The same seed must give the same outcome: the whole stack is deterministic.
#[test]
fn simulation_is_deterministic_end_to_end() {
    let run = |seed: u64| {
        let schedule = FaultSchedule::none().crash_at(0, SimTime::from_millis(500));
        let mut harness = RaftHarness::new(5, NetworkConfig::wan(), seed).with_faults(&schedule);
        harness.submit_commands(8);
        let outcome = harness.run_for_millis(4_000);
        (
            outcome.agreement,
            outcome.all_committed,
            outcome.committed_lengths,
            outcome.messages_delivered,
        )
    };
    assert_eq!(run(77), run(77));
}
