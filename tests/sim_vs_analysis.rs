//! Integration tests validating the analytic predictions against the executable
//! protocols running on the discrete-event simulator — the cross-validation loop
//! of the paper's method, driven through the query API's
//! [`validate_with_simulation`](prob_consensus::query::Query::validate_with_simulation)
//! mode wherever a whole sweep is checked, and through targeted harness runs for
//! the theorem-boundary cases.

use consensus_protocols::harness::{PbftHarness, RaftHarness};
use consensus_sim::fault::FaultSchedule;
use consensus_sim::network::NetworkConfig;
use consensus_sim::time::SimTime;
use prob_consensus::engine::{Budget, SimBudget};
use prob_consensus::protocol::ProtocolModel;
use prob_consensus::query::{AnalysisSession, ProtocolSpec, Query};
use prob_consensus::raft_model::RaftModel;

/// The analysis says a failure configuration with at most `N - Q_per` crashes is live:
/// drive the real protocol through explicit configurations on both sides of the line.
#[test]
fn raft_liveness_boundary_matches_theorem_3_2() {
    // 5 nodes, majority 3: up to 2 crashes keep the cluster live, 3 crashes do not.
    for crashes in 0..=3usize {
        let mut schedule = FaultSchedule::none();
        for node in 0..crashes {
            schedule = schedule.crash_at(node, SimTime::from_millis(1));
        }
        let mut harness =
            RaftHarness::new(5, NetworkConfig::lan(), 100 + crashes as u64).with_faults(&schedule);
        harness.submit_commands(5);
        let outcome = harness.run_for_millis(5_000);
        assert!(
            outcome.agreement,
            "{crashes} crashes must never break agreement"
        );
        let model = RaftModel::standard(5);
        let analytic_live = model.is_live(&prob_consensus::failure::FailureConfig::with_crashed(
            5,
            &(0..crashes).collect::<Vec<_>>(),
        ));
        assert_eq!(
            outcome.all_committed, analytic_live,
            "{crashes} crashes: simulation and Theorem 3.2 disagree"
        );
    }
}

/// PBFT with the standard N = 3f+1 layout: f silent Byzantine nodes keep the system safe
/// and live, f+1 cost liveness, and agreement holds in both cases (Theorem 3.1).
#[test]
fn pbft_fault_boundary_matches_theorem_3_1() {
    for byzantine in [1usize, 2] {
        let mut schedule = FaultSchedule::none();
        for node in 0..byzantine {
            schedule = schedule.byzantine_at(node, SimTime::from_millis(1));
        }
        let mut harness = PbftHarness::new(4, NetworkConfig::lan(), 200 + byzantine as u64)
            .with_faults(&schedule);
        harness.submit_commands(4);
        let outcome = harness.run_for_millis(6_000);
        assert!(
            outcome.agreement,
            "{byzantine} silent Byzantine nodes broke agreement"
        );
        let expected_live = byzantine <= 1;
        assert_eq!(
            outcome.all_committed, expected_live,
            "{byzantine} Byzantine nodes: liveness mismatch"
        );
    }
}

/// The cross-validation loop through the query API: every cell of a small Raft
/// sweep is paired with a simulation run, and the reported z-scores certify that
/// the empirical safe-and-live rates track the analytic predictions.
#[test]
fn empirical_safe_and_live_rate_tracks_analysis() {
    // Deliberately high p so the empirical rate is resolvable with few trials.
    let query = Query::new()
        .protocols([ProtocolSpec::Raft])
        .nodes([3usize, 5])
        .fault_probs([0.2])
        .budget(Budget::default().with_seed(7).with_sim(SimBudget {
            trials: 60,
            horizon_millis: 2_000,
            fault_window_millis: 100,
            commands: 2,
            ..SimBudget::default()
        }))
        .validate_with_simulation();
    let report = AnalysisSession::new()
        .run(&query)
        .expect("well-formed query");
    assert_eq!(report.cells().len(), 2);
    for cell in report.cells() {
        let validation = cell.validation.expect("every Raft cell is executable");
        // A |z| < 4 gate is generous for one comparison but tight enough to catch
        // a real modelling gap (an off-by-one quorum shifts the rate by many σ).
        assert!(
            validation.agrees_within(4.0),
            "{}: analytic {:.3} vs empirical {:.3} (z = {:+.2})",
            cell.label,
            validation.analytic,
            validation.simulation.safe_and_live.value,
            validation.z_score
        );
        // The paired trials really ran and produced trace-derived statistics.
        assert_eq!(validation.simulation.trials, 60);
        assert!(validation.simulation.mean_messages_delivered > 0.0);
    }
}

/// The same loop under *correlated* faults: a whole-cluster shock makes the
/// analytic liveness collapse, and the simulated trials (whose schedules sample
/// the same correlation model) reproduce it.
#[test]
fn correlated_shock_validation_tracks_analysis() {
    use prob_consensus::query::CorrelationSpec;
    let query = Query::new()
        .protocols([ProtocolSpec::Raft])
        .nodes([3usize])
        .fault_probs([0.05])
        .correlations([CorrelationSpec::ClusterShock { probability: 0.3 }])
        .budget(
            Budget::default()
                .with_samples(20_000)
                .with_seed(3)
                .with_sim(SimBudget {
                    trials: 60,
                    horizon_millis: 2_000,
                    fault_window_millis: 100,
                    commands: 2,
                    ..SimBudget::default()
                }),
        )
        .validate_with_simulation();
    let report = AnalysisSession::new()
        .run(&query)
        .expect("well-formed query");
    let cell = report.cell(0);
    let validation = cell.validation.expect("correlated Raft cell is executable");
    assert!(
        validation.agrees_within(4.0),
        "analytic {:.3} vs empirical {:.3} (z = {:+.2})",
        validation.analytic,
        validation.simulation.safe_and_live.value,
        validation.z_score
    );
    // The shock fires in ~30% of trials and kills all three nodes: liveness is
    // visibly below the independent-faults level.
    assert!(validation.analytic < 0.85);
    assert!(validation.simulation.total_faults_injected > 0);
}

/// Reliability-aware election priorities do not change correctness, only who leads.
#[test]
fn reliability_aware_leader_selection_preserves_correctness() {
    let profiles = vec![
        fault_model::mode::FaultProfile::crash_only(0.08),
        fault_model::mode::FaultProfile::crash_only(0.01),
        fault_model::mode::FaultProfile::crash_only(0.04),
        fault_model::mode::FaultProfile::crash_only(0.02),
        fault_model::mode::FaultProfile::crash_only(0.03),
    ];
    let config = consensus_protocols::probabilistic::reliability_aware_raft_config(&profiles);
    let mut harness = RaftHarness::with_config(config, NetworkConfig::lan(), 9);
    harness.submit_commands(10);
    let outcome = harness.run_for_millis(3_000);
    assert!(outcome.safe_and_live());
    // The most reliable node (index 1) should have ended up leading.
    use consensus_protocols::raft::Role;
    assert_eq!(harness.sim().node(1).role(), Role::Leader);
}

/// The same seed must give the same outcome: the whole stack is deterministic.
#[test]
fn simulation_is_deterministic_end_to_end() {
    let run = |seed: u64| {
        let schedule = FaultSchedule::none().crash_at(0, SimTime::from_millis(500));
        let mut harness = RaftHarness::new(5, NetworkConfig::wan(), seed).with_faults(&schedule);
        harness.submit_commands(8);
        let outcome = harness.run_for_millis(4_000);
        (
            outcome.agreement,
            outcome.all_committed,
            outcome.committed_lengths,
            outcome.messages_delivered,
        )
    };
    assert_eq!(run(77), run(77));
}
