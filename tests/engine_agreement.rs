//! The cross-engine contract: the four analysis engines are independent
//! implementations of the same mathematical object, so they must agree — exactly
//! between the two exact engines, within confidence-interval tolerance for the two
//! sampling engines — and both parallel samplers must be bit-identical across
//! thread counts.

use fault_model::correlation::{CorrelationGroup, CorrelationModel};
use fault_model::mode::FaultProfile;
use prob_consensus::analyzer::analyze_auto;
use prob_consensus::deployment::Deployment;
use prob_consensus::durability::PersistenceQuorumModel;
use prob_consensus::engine::{
    AnalysisEngine, Budget, CountingEngine, EngineChoice, EnumerationEngine,
    ImportanceSamplingEngine, MonteCarloEngine, Scenario,
};
use prob_consensus::montecarlo::{monte_carlo_reliability_par, McKernel, MC_CHUNK_SIZE};
use prob_consensus::pbft_model::PbftModel;
use prob_consensus::protocol::ProtocolModel;
use prob_consensus::raft_model::RaftModel;

/// Seed of the fixed-seed sampling assertions below. Like any fixed-seed 95%
/// confidence interval, an unlucky seed can put the exact answer just outside one
/// cell's interval; this seed was verified to pass every cell of every grid for
/// both sampling kernels.
const GRID_SEED: u64 = 3;

/// The deployment grid: cluster sizes and fault probabilities covering the paper's
/// tables plus heterogeneous and mixed-mode cases.
fn deployment_grid(n: usize) -> Vec<Deployment> {
    let mut grid = Vec::new();
    for p in [0.01, 0.08, 0.25] {
        grid.push(Deployment::uniform_crash(n, p));
        grid.push(Deployment::uniform_byzantine(n, p));
    }
    grid.push(Deployment::uniform_mixed(n, 0.05, 0.01));
    // Heterogeneous: reliability decreasing with the node index.
    grid.push(Deployment::from_profiles(
        (0..n)
            .map(|i| FaultProfile::crash_only(0.01 * (i + 1) as f64))
            .collect(),
    ));
    grid
}

/// Asserts all three engines agree on one model/deployment pair.
fn assert_engines_agree(model: &dyn ProtocolModel, deployment: &Deployment, context: &str) {
    let scenario = Scenario::Independent(deployment);
    let budget = Budget::default().with_samples(60_000).with_seed(GRID_SEED);

    let enumerated = EnumerationEngine.run(model, scenario, &budget);
    let counted = CountingEngine.run(model, scenario, &budget);
    let sampled = MonteCarloEngine.run(model, scenario, &budget);

    // The two exact engines agree to numerical precision.
    for (a, b, what) in [
        (
            enumerated.report.safe.probability(),
            counted.report.safe.probability(),
            "safe",
        ),
        (
            enumerated.report.live.probability(),
            counted.report.live.probability(),
            "live",
        ),
        (
            enumerated.report.safe_and_live.probability(),
            counted.report.safe_and_live.probability(),
            "safe&live",
        ),
    ] {
        assert!(
            (a - b).abs() < 1e-9,
            "{context}: enumeration {what} = {a} vs counting {what} = {b}"
        );
    }

    // Monte Carlo agrees within twice its 95% half-width (~3.9σ). The factor of two
    // is a multiple-comparisons allowance: this file makes hundreds of simultaneous
    // fixed-seed interval checks, so raw 95% containment would fail somewhere for
    // almost every seed, while a real estimator bug shifts estimates by far more
    // than an interval width.
    let mc = sampled.monte_carlo.expect("monte carlo carries estimates");
    let eps = 1e-9;
    for (estimate, truth, what) in [
        (mc.safe, counted.report.safe.probability(), "safe"),
        (mc.live, counted.report.live.probability(), "live"),
        (
            mc.safe_and_live,
            counted.report.safe_and_live.probability(),
            "safe&live",
        ),
    ] {
        assert!(
            (estimate.value - truth).abs() <= 2.0 * estimate.half_width() + eps,
            "{context}: exact {what} = {truth} vs estimate {} (95% CI [{}, {}])",
            estimate.value,
            estimate.lower,
            estimate.upper
        );
    }
}

#[test]
fn engines_agree_on_raft_grid() {
    for n in [3usize, 5, 7] {
        for deployment in deployment_grid(n) {
            let model = RaftModel::standard(n);
            assert_engines_agree(&model, &deployment, &format!("Raft N={n}"));
        }
    }
}

#[test]
fn engines_agree_on_pbft_grid() {
    for n in [4usize, 5, 7] {
        for deployment in deployment_grid(n) {
            let model = PbftModel::standard(n);
            assert_engines_agree(&model, &deployment, &format!("PBFT N={n}"));
        }
    }
}

#[test]
fn engines_agree_on_flexible_quorum_configurations() {
    let model = RaftModel::flexible(5, 2, 4);
    for deployment in deployment_grid(5) {
        assert_engines_agree(&model, &deployment, "Raft(5, Q_per=2, Q_vc=4)");
    }
}

/// The packed (bit-sliced) and scalar Monte Carlo kernels are independent
/// implementations of the same estimator over *different* RNG streams, so each must
/// contain the exact counting answer in its own confidence interval, across a
/// (protocol × N × p) grid covering both the threshold plan (crash-only) and the
/// LUT plan (mixed crash/Byzantine).
#[test]
fn packed_and_scalar_kernels_agree_on_the_grid() {
    let scalar_budget = Budget::default()
        .with_samples(60_000)
        .with_seed(GRID_SEED)
        .with_mc_kernel(McKernel::Scalar);
    let packed_budget = scalar_budget.with_mc_kernel(McKernel::Packed);
    let mut checked = 0usize;
    for n in [3usize, 5, 7, 9] {
        for p in [0.01, 0.08, 0.25] {
            let raft = RaftModel::standard(n);
            let pbft = PbftModel::standard(n.max(4));
            let crash = Deployment::uniform_crash(n, p);
            let mixed = Deployment::uniform_mixed(pbft.num_nodes(), p, p / 4.0);
            for (model, deployment) in [
                (&raft as &dyn ProtocolModel, &crash),
                (&pbft as &dyn ProtocolModel, &mixed),
            ] {
                let scenario = Scenario::Independent(deployment);
                let exact = CountingEngine.run(model, scenario, &scalar_budget);
                let scalar = MonteCarloEngine.run(model, scenario, &scalar_budget);
                let packed = MonteCarloEngine.run(model, scenario, &packed_budget);
                let scalar_mc = scalar.monte_carlo.expect("scalar estimate");
                let packed_mc = packed.monte_carlo.expect("packed estimate");
                let context = format!("{} N={n} p={p}", model.name());
                // The reports name the kernel that actually ran: this comparison is
                // only meaningful if it is not scalar-vs-scalar by silent fallback.
                assert_eq!(scalar_mc.kernel, McKernel::Scalar, "{context}");
                assert_eq!(packed_mc.kernel, McKernel::Packed, "{context}");
                for (s, q, truth, what) in [
                    (
                        scalar_mc.safe,
                        packed_mc.safe,
                        exact.report.safe.probability(),
                        "safe",
                    ),
                    (
                        scalar_mc.live,
                        packed_mc.live,
                        exact.report.live.probability(),
                        "live",
                    ),
                    (
                        scalar_mc.safe_and_live,
                        packed_mc.safe_and_live,
                        exact.report.safe_and_live.probability(),
                        "safe&live",
                    ),
                ] {
                    // Twice the 95% half-width (~3.9σ): the multiple-comparisons
                    // allowance of `assert_engines_agree`, for the same reason.
                    let eps = 1e-9;
                    assert!(
                        (s.value - truth).abs() <= 2.0 * s.half_width() + eps,
                        "{context}: exact {what} = {truth} vs scalar {} (CI [{}, {}])",
                        s.value,
                        s.lower,
                        s.upper
                    );
                    assert!(
                        (q.value - truth).abs() <= 2.0 * q.half_width() + eps,
                        "{context}: exact {what} = {truth} vs packed {} (CI [{}, {}])",
                        q.value,
                        q.lower,
                        q.upper
                    );
                    // And the two estimates agree with each other within their
                    // combined interval half-widths.
                    let tolerance = s.half_width() + q.half_width() + eps;
                    assert!(
                        (s.value - q.value).abs() <= tolerance,
                        "{context}: scalar {what} = {} vs packed {what} = {} beyond {tolerance}",
                        s.value,
                        q.value
                    );
                }
                checked += 1;
            }
        }
    }
    assert_eq!(checked, 24, "the grid must cover all of its cells");
}

/// The ragged-tail case: a sample count that is a multiple of neither the 64-lane
/// block width nor the chunk size must be fully drawn (not rounded) by both kernels
/// and still contain the exact answer.
#[test]
fn packed_kernel_handles_ragged_sample_counts() {
    let model = RaftModel::standard(9);
    let deployment = Deployment::uniform_crash(9, 0.08);
    let scenario = Scenario::Independent(&deployment);
    let samples = 2 * MC_CHUNK_SIZE + 99; // % 64 != 0 and % MC_CHUNK_SIZE != 0
    assert_ne!(samples % 64, 0);
    assert_ne!(samples % MC_CHUNK_SIZE, 0);
    let exact = CountingEngine.run(&model, scenario, &Budget::default());
    for kernel in [McKernel::Scalar, McKernel::Packed] {
        let budget = Budget::default()
            .with_samples(samples)
            .with_seed(GRID_SEED)
            .with_mc_kernel(kernel);
        let mc = MonteCarloEngine
            .run(&model, scenario, &budget)
            .monte_carlo
            .expect("estimate");
        assert_eq!(mc.samples, samples, "{kernel:?} must draw the full budget");
        assert!(
            mc.live.contains(exact.report.live.probability()),
            "{kernel:?}: exact live outside [{}, {}]",
            mc.live.lower,
            mc.live.upper
        );
    }
}

/// Pass-width bit-identity for the packed path, through the engine layer: the
/// positional counter-based RNG keys every lane's draw on its absolute sample
/// index, so the kernel's answer is independent of how many 64-lane words each
/// pass packs (W = 1, 4, 8 — 64, 256, 512 lanes). Covers both the crash-only
/// threshold plan and the mixed-mode LUT plan, with a ragged tail.
#[test]
fn packed_kernel_is_bit_identical_across_pass_widths() {
    let raft = RaftModel::standard(9);
    let crash = Deployment::uniform_crash(9, 0.08);
    let pbft = PbftModel::standard(7);
    let mixed = Deployment::uniform_mixed(7, 0.05, 0.01);
    let samples = 2 * MC_CHUNK_SIZE + 99;
    for (model, deployment) in [
        (&raft as &dyn ProtocolModel, &crash),
        (&pbft as &dyn ProtocolModel, &mixed),
    ] {
        let scenario = Scenario::Independent(deployment);
        let base = Budget::default()
            .with_samples(samples)
            .with_seed(GRID_SEED)
            .with_mc_kernel(McKernel::Packed);
        let reference = MonteCarloEngine.run(model, scenario, &base.with_mc_lane_words(1));
        for lane_words in [4usize, 8] {
            let wide = MonteCarloEngine.run(model, scenario, &base.with_mc_lane_words(lane_words));
            assert_eq!(
                wide.monte_carlo,
                reference.monte_carlo,
                "{}: W={lane_words} diverged from W=1",
                model.name()
            );
            assert_eq!(wide.report, reference.report);
        }
    }
}

/// Thread-count bit-identity for the packed path, through the engine layer, on a
/// correlated mixed-mode scenario with a ragged tail.
#[test]
fn packed_kernel_is_bit_identical_across_thread_counts() {
    let model = PbftModel::standard(7);
    let failure_model = CorrelationModel::independent(
        (0..7)
            .map(|i| FaultProfile::new(0.03 * (i % 2) as f64, 0.01))
            .collect(),
    )
    .with_group(CorrelationGroup::byzantine_shock(vec![0, 1, 2], 0.004))
    .with_group(CorrelationGroup::crash_shock(vec![2, 3, 4, 5], 0.02));
    let budget = Budget::default()
        .with_samples(3 * MC_CHUNK_SIZE + 21)
        .with_seed(GRID_SEED)
        .with_mc_kernel(McKernel::Packed);
    let scenario = Scenario::Correlated(&failure_model);
    let reference = MonteCarloEngine.run(&model, scenario, &budget);
    for threads in [1usize, 2, 3, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool builds");
        let outcome = pool.install(|| MonteCarloEngine.run(&model, scenario, &budget));
        assert_eq!(
            outcome.monte_carlo, reference.monte_carlo,
            "packed kernel diverged at {threads} threads"
        );
        assert_eq!(outcome.report, reference.report);
    }
}

#[test]
fn parallel_monte_carlo_is_bit_identical_across_thread_counts() {
    let model = PbftModel::standard(7);
    let failure_model = CorrelationModel::independent(
        (0..7)
            .map(|i| FaultProfile::new(0.02 * (i % 3) as f64, 0.01))
            .collect(),
    )
    .with_group(CorrelationGroup::byzantine_shock(vec![0, 1, 2], 0.005))
    .with_group(CorrelationGroup::crash_shock(vec![3, 4, 5, 6], 0.01));
    // Straddle several chunk boundaries, including a ragged tail.
    let samples = 50_000;
    let reference = monte_carlo_reliability_par(&model, &failure_model, samples, 77);
    for threads in [1usize, 2, 4, 7, 16] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool builds");
        let report =
            pool.install(|| monte_carlo_reliability_par(&model, &failure_model, samples, 77));
        assert_eq!(
            report, reference,
            "parallel MC diverged at {threads} threads"
        );
    }
}

/// Importance sampling is the fourth independent implementation: pinned with a
/// uniform tilt on small deployments, it must agree with exact counting within its
/// reported confidence intervals.
#[test]
fn importance_sampling_agrees_with_exact_engines_on_small_grids() {
    let budget = Budget::default()
        .with_samples(60_000)
        .with_seed(2025)
        .with_rare_event_tilt(4.0);
    for n in [3usize, 5] {
        for p in [0.01, 0.05] {
            let model = RaftModel::standard(n);
            let deployment = Deployment::uniform_crash(n, p);
            let scenario = Scenario::Independent(&deployment);
            let exact = CountingEngine.run(&model, scenario, &budget);
            let tilted = ImportanceSamplingEngine.run(&model, scenario, &budget);
            let report = tilted.rare_event.expect("weighted estimate attached");
            for (estimate, truth, what) in [
                (report.safe, exact.report.safe.probability(), "safe"),
                (report.live, exact.report.live.probability(), "live"),
                (
                    report.safe_and_live,
                    exact.report.safe_and_live.probability(),
                    "safe&live",
                ),
            ] {
                assert!(
                    estimate.lower - 1e-9 <= truth && truth <= estimate.upper + 1e-9,
                    "Raft N={n} p={p}: exact {what} = {truth} outside weighted interval [{}, {}]",
                    estimate.lower,
                    estimate.upper
                );
            }
        }
    }
    // PBFT safety under Byzantine faults — a genuinely two-sided guarantee.
    let model = PbftModel::standard(4);
    let deployment = Deployment::uniform_byzantine(4, 0.02);
    let scenario = Scenario::Independent(&deployment);
    let exact = CountingEngine.run(&model, scenario, &budget);
    let report = ImportanceSamplingEngine
        .run(&model, scenario, &budget)
        .rare_event
        .expect("weighted estimate attached");
    assert!(report.safe.contains(exact.report.safe.probability()));
}

/// The rare-event engine's whole point: reproduce the exact answer in a regime where
/// the exact engines cannot go (placement-sensitive model, N = 60) and plain Monte
/// Carlo would need ~1e7 samples per hit.
#[test]
fn importance_sampling_reaches_tail_probabilities_plain_sampling_cannot() {
    let deployment = Deployment::uniform_crash(60, 0.05);
    let model = PersistenceQuorumModel::new(60, (0..5).collect());
    let budget = Budget::default().with_samples(60_000).with_seed(9);
    let scenario = Scenario::Independent(&deployment);
    assert_eq!(
        prob_consensus::analyzer::chosen_engine(&model, scenario, &budget),
        EngineChoice::ImportanceSampling
    );
    let outcome = prob_consensus::analyzer::analyze_scenario(&model, scenario, &budget)
        .expect("well-formed scenario");
    let report = outcome.rare_event.expect("weighted estimate attached");
    let truth = 1.0 - 0.05f64.powi(5); // P[loss] ≈ 3.1e-7
    assert!(
        report.safe.contains(truth),
        "exact {truth} outside [{}, {}]",
        report.safe.lower,
        report.safe.upper
    );
    // The interval must actually resolve the tail: far tighter than plain MC's
    // rule-of-three bound (~5e-5 at this sample count).
    assert!(report.safe.half_width() < 1e-7);
}

#[test]
fn parallel_importance_sampling_is_bit_identical_across_thread_counts() {
    let deployment = Deployment::uniform_crash(30, 0.04);
    let model = PersistenceQuorumModel::new(30, vec![0, 7, 19, 28]);
    // Adaptive pilot plus weighted main run, straddling chunk boundaries.
    let budget = Budget::default().with_samples(3 * 4096 + 29).with_seed(77);
    let scenario = Scenario::Independent(&deployment);
    let reference = ImportanceSamplingEngine.run(&model, scenario, &budget);
    for threads in [1usize, 2, 4, 7, 16] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool builds");
        let outcome = pool.install(|| ImportanceSamplingEngine.run(&model, scenario, &budget));
        assert_eq!(
            outcome.rare_event, reference.rare_event,
            "weighted sampler diverged at {threads} threads"
        );
        assert_eq!(outcome.report, reference.report);
    }
}

/// The query-API determinism contract (see `crates/core/src/query.rs`): a planned
/// sweep must be **bit-identical** to a hand-rolled per-cell front-door loop, at
/// every thread count. The grid is a paper-style sweep — 3 protocols × 5 cluster
/// sizes × 4 fault probabilities × {independent, cluster-shock}, mixed crash/
/// Byzantine profiles — plus two explicit placement-sensitive cells, so all four
/// engines and both Monte Carlo kernels appear among the 122 cells.
#[test]
fn query_plan_execute_matches_per_cell_loop_bit_for_bit() {
    use prob_consensus::analyzer::analyze_scenario;
    use prob_consensus::engine::AnalysisOutcome;
    use prob_consensus::query::{AnalysisSession, CorrelationSpec, FaultAxis, ProtocolSpec, Query};
    use std::sync::Arc;

    const PROTOCOLS: [ProtocolSpec; 3] = [
        ProtocolSpec::Raft,
        ProtocolSpec::RaftFlexible { q_per: 3, q_vc: 4 },
        ProtocolSpec::Pbft,
    ];
    const NS: [usize; 5] = [5, 7, 9, 11, 13];
    const PS: [f64; 4] = [0.01, 0.05, 0.10, 0.25];
    const BYZANTINE: f64 = 0.005;
    const SHOCK: f64 = 0.01;
    const CORRELATIONS: [CorrelationSpec; 2] = [
        CorrelationSpec::Independent,
        CorrelationSpec::ClusterShock { probability: SHOCK },
    ];
    let budget = Budget::default().with_samples(6_000).with_seed(GRID_SEED);

    // Two explicit cells outside the grid: a rare-event cell (importance
    // sampling) and a common-failure placement-sensitive cell (scalar-kernel
    // Monte Carlo — no counting view).
    let rare_model: Arc<dyn ProtocolModel + Send + Sync> =
        Arc::new(PersistenceQuorumModel::new(24, (0..4).collect()));
    let rare_deployment = Deployment::uniform_crash(24, 0.05);
    let common_model: Arc<dyn ProtocolModel + Send + Sync> =
        Arc::new(PersistenceQuorumModel::new(30, (0..2).collect()));
    let common_deployment = Deployment::uniform_crash(30, 0.25);

    let query = Query::new()
        .protocols(PROTOCOLS)
        .nodes(NS)
        .fault_probs(PS)
        .faults(FaultAxis::Mixed {
            byzantine: BYZANTINE,
        })
        .correlations(CORRELATIONS)
        .budget(budget)
        .cell("rare-quorum", rare_model.clone(), rare_deployment.clone())
        .cell(
            "common-quorum",
            common_model.clone(),
            common_deployment.clone(),
        );
    assert!(
        query.cell_count() >= 100,
        "a paper-style sweep is >= 100 cells"
    );

    // The reference: the same cells through the per-cell front doors, in the
    // grid's axis-nesting order.
    let mut reference: Vec<AnalysisOutcome> = Vec::with_capacity(query.cell_count());
    for spec in PROTOCOLS {
        for n in NS {
            let model = spec.build(n);
            for p in PS {
                let deployment = Deployment::uniform_mixed(n, p, BYZANTINE);
                for correlation in CORRELATIONS {
                    reference.push(match correlation {
                        CorrelationSpec::Independent => {
                            analyze_auto(model.as_ref(), &deployment, &budget)
                        }
                        _ => {
                            let correlated =
                                CorrelationModel::independent(deployment.profiles().to_vec())
                                    .with_group(CorrelationGroup::crash_shock(
                                        (0..n).collect(),
                                        SHOCK,
                                    ));
                            analyze_scenario(
                                model.as_ref(),
                                Scenario::Correlated(&correlated),
                                &budget,
                            )
                            .expect("well-formed scenario")
                        }
                    });
                }
            }
        }
    }
    reference.push(analyze_auto(rare_model.as_ref(), &rare_deployment, &budget));
    reference.push(analyze_auto(
        common_model.as_ref(),
        &common_deployment,
        &budget,
    ));

    let mut engines_seen = std::collections::HashSet::new();
    for threads in [1usize, 2, 8] {
        let session = AnalysisSession::with_threads(threads);
        let plan = session.plan(&query).expect("well-formed sweep");
        assert_eq!(plan.len(), reference.len());
        let report = plan.execute();
        for (index, (cell, expected)) in report.cells().iter().zip(&reference).enumerate() {
            assert_eq!(
                &cell.outcome, expected,
                "cell {index} ({}) diverged from the per-cell loop at {threads} threads",
                cell.label
            );
            engines_seen.insert(cell.engine);
        }
    }
    // The sweep genuinely exercised the whole registry.
    for engine in [
        EngineChoice::Counting,
        EngineChoice::MonteCarlo,
        EngineChoice::ImportanceSampling,
    ] {
        assert!(engines_seen.contains(&engine), "{engine} never selected");
    }
}

/// The fifth engine's determinism contract: a batch of simulation trials is
/// bit-identical across thread counts for a fixed seed (trial RNGs are derived
/// from the trial index, and the verdict tallies are integers).
#[test]
fn simulation_engine_is_bit_identical_across_thread_counts() {
    use prob_consensus::engine::SimBudget;
    use prob_consensus::simulation::SimulationEngine;
    let model = RaftModel::standard(3);
    let profiles = vec![FaultProfile::crash_only(0.15); 3];
    // A correlated scenario, so the schedule sampler's shock path is exercised.
    let failure_model = CorrelationModel::independent(profiles)
        .with_group(CorrelationGroup::crash_shock((0..3).collect(), 0.1));
    let budget = Budget::default().with_seed(GRID_SEED).with_sim(SimBudget {
        trials: 24,
        horizon_millis: 1_500,
        fault_window_millis: 100,
        commands: 2,
        ..SimBudget::default()
    });
    let scenario = Scenario::Correlated(&failure_model);
    let reference = SimulationEngine.run(&model, scenario, &budget);
    assert!(reference.simulation.is_some());
    for threads in [1usize, 2, 3, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool builds");
        let outcome = pool.install(|| SimulationEngine.run(&model, scenario, &budget));
        assert_eq!(
            outcome.simulation, reference.simulation,
            "simulation engine diverged at {threads} threads"
        );
        assert_eq!(outcome.report, reference.report);
    }
}

/// The fifth engine against the first: on a small Raft grid the simulated
/// safe-and-live frequency must agree with the exact counting engine within 3σ
/// of its binomial standard error at a fixed seed. (The simulated *system* could
/// legitimately diverge from the *model* — that disagreement is exactly what the
/// validation mode exists to surface — so this pins that it does not.)
#[test]
fn simulated_frequencies_agree_with_the_counting_engine() {
    use prob_consensus::engine::SimBudget;
    use prob_consensus::simulation::SimulationEngine;
    let budget = Budget::default().with_seed(GRID_SEED).with_sim(SimBudget {
        trials: 60,
        horizon_millis: 2_000,
        fault_window_millis: 100,
        commands: 2,
        ..SimBudget::default()
    });
    for n in [3usize, 5] {
        for p in [0.1, 0.25] {
            let model = RaftModel::standard(n);
            let deployment = Deployment::uniform_crash(n, p);
            let scenario = Scenario::Independent(&deployment);
            let exact = CountingEngine
                .run(&model, scenario, &budget)
                .report
                .safe_and_live
                .probability();
            let simulated = SimulationEngine
                .run(&model, scenario, &budget)
                .simulation
                .expect("simulation report attached");
            let se = (exact * (1.0 - exact) / simulated.trials as f64)
                .sqrt()
                .max(1e-9);
            let empirical = simulated.safe_and_live.value;
            assert!(
                (empirical - exact).abs() <= 3.0 * se,
                "Raft N={n} p={p}: exact {exact:.4} vs simulated {empirical:.4} \
                 (3σ = {:.4})",
                3.0 * se
            );
            // Crash faults never break Raft agreement, analytically or empirically.
            assert_eq!(simulated.safe.value, 1.0);
        }
    }
}

#[test]
fn auto_selection_is_consistent_with_explicit_engines() {
    // For a counting model, analyze_auto must reproduce the counting engine bit for bit.
    let model = RaftModel::standard(9);
    let deployment = Deployment::uniform_crash(9, 0.04);
    let auto = analyze_auto(&model, &deployment, &Budget::default());
    assert_eq!(auto.engine, EngineChoice::Counting);
    let explicit = CountingEngine.run(
        &model,
        Scenario::Independent(&deployment),
        &Budget::default(),
    );
    assert_eq!(auto.report, explicit.report);
}
