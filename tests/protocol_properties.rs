//! Property-based integration tests: invariants of the executable protocols under
//! randomized fault schedules, and consistency between the analysis engines.

use consensus_protocols::harness::{PbftHarness, RaftHarness};
use consensus_sim::fault::FaultSchedule;
use consensus_sim::network::NetworkConfig;
use consensus_sim::time::SimTime;
use prob_consensus::analyzer::{analyze_auto, analyze_exact};
use prob_consensus::deployment::Deployment;
use prob_consensus::engine::Budget;
use prob_consensus::pbft_model::PbftModel;
use prob_consensus::raft_model::RaftModel;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Crash faults — any number of them, at any time — must never break Raft agreement.
    #[test]
    fn raft_agreement_holds_under_arbitrary_crashes(
        seed in 0u64..1_000,
        crash_times in proptest::collection::vec(0u64..2_000, 0..5),
    ) {
        let n = 5;
        let mut schedule = FaultSchedule::none();
        for (node, &at) in crash_times.iter().enumerate() {
            schedule = schedule.crash_at(node % n, SimTime::from_millis(at));
        }
        let mut harness = RaftHarness::new(n, NetworkConfig::lan(), seed).with_faults(&schedule);
        harness.submit_commands(5);
        let outcome = harness.run_for_millis(3_000);
        prop_assert!(outcome.agreement, "crashes broke agreement: {outcome:?}");
    }

    /// With at most f silent Byzantine nodes, PBFT agreement must hold.
    #[test]
    fn pbft_agreement_holds_with_up_to_f_silent_byzantine_nodes(
        seed in 0u64..1_000,
        byzantine_node in 0usize..4,
    ) {
        let schedule = FaultSchedule::none().byzantine_at(byzantine_node, SimTime::from_millis(1));
        let mut harness = PbftHarness::new(4, NetworkConfig::lan(), seed).with_faults(&schedule);
        harness.submit_commands(3);
        let outcome = harness.run_for_millis(4_000);
        prop_assert!(outcome.agreement);
    }

    /// Message loss delays progress but never produces disagreement.
    #[test]
    fn raft_agreement_survives_lossy_networks(seed in 0u64..1_000, drop in 0.0f64..0.3) {
        let net = NetworkConfig::lan().with_drop_probability(drop);
        let mut harness = RaftHarness::new(3, net, seed);
        harness.submit_commands(5);
        let outcome = harness.run_for_millis(2_000);
        prop_assert!(outcome.agreement);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The counting engine and the exhaustive enumeration engine agree on every
    /// homogeneous deployment (they are derived independently).
    #[test]
    fn counting_and_enumeration_agree(
        n in 3usize..9,
        p_crash in 0.0f64..0.4,
        p_byz in 0.0f64..0.2,
    ) {
        let deployment = Deployment::uniform_mixed(n, p_crash, p_byz);
        let budget = Budget::default();
        let pbft = PbftModel::standard(n.max(4));
        if n >= 4 {
            let a = analyze_auto(&pbft, &deployment, &budget).report;
            let b = analyze_exact(&pbft, &deployment);
            prop_assert!((a.safe.probability() - b.safe.probability()).abs() < 1e-9);
            prop_assert!((a.live.probability() - b.live.probability()).abs() < 1e-9);
        }
        let raft = RaftModel::standard(n);
        let a = analyze_auto(&raft, &deployment, &budget).report;
        let b = analyze_exact(&raft, &deployment);
        prop_assert!((a.safe_and_live.probability() - b.safe_and_live.probability()).abs() < 1e-9);
    }

    /// Reliability is monotone: lowering every node's fault probability never lowers the
    /// safe-and-live probability.
    #[test]
    fn reliability_is_monotone_in_fault_probability(
        n in 3usize..10,
        p in 0.01f64..0.5,
        improvement in 0.1f64..0.9,
    ) {
        let model = RaftModel::standard(n);
        let budget = Budget::default();
        let worse = analyze_auto(&model, &Deployment::uniform_crash(n, p), &budget).report;
        let better =
            analyze_auto(&model, &Deployment::uniform_crash(n, p * improvement), &budget).report;
        prop_assert!(
            better.safe_and_live.probability() >= worse.safe_and_live.probability() - 1e-12
        );
    }

    /// Growing a Raft cluster (at fixed p, odd sizes) never hurts the guarantee.
    #[test]
    fn bigger_raft_clusters_are_no_worse(k in 1usize..5, p in 0.01f64..0.3) {
        let small_n = 2 * k + 1;
        let large_n = 2 * k + 3;
        let budget = Budget::default();
        let small = analyze_auto(
            &RaftModel::standard(small_n),
            &Deployment::uniform_crash(small_n, p),
            &budget,
        )
        .report;
        let large = analyze_auto(
            &RaftModel::standard(large_n),
            &Deployment::uniform_crash(large_n, p),
            &budget,
        )
        .report;
        prop_assert!(
            large.safe_and_live.probability() >= small.safe_and_live.probability() - 1e-12
        );
    }
}
