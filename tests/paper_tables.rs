//! Integration tests asserting the reproduced numbers for every table and quantitative
//! claim in the paper (see DESIGN.md for the experiment index and EXPERIMENTS.md for the
//! recorded paper-vs-measured values).

use prob_consensus::analyzer::analyze_auto;
use prob_consensus::deployment::Deployment;
use prob_consensus::engine::{Budget, EngineChoice};
use prob_consensus::query::{AnalysisSession, FaultAxis, ProtocolSpec, Query};
use prob_consensus::raft_model::RaftModel;
use prob_consensus::tradeoff::{compare, pbft_sweep};

/// Asserts a probability against a percentage exactly as printed in the paper, to within
/// one unit in the last printed digit.
fn assert_paper_percent(probability: f64, paper: &str, context: &str) {
    let decimals = paper.split('.').nth(1).map_or(0, str::len);
    let unit = 10f64.powi(-(decimals as i32)) / 100.0;
    let expected: f64 = paper.parse::<f64>().unwrap() / 100.0;
    assert!(
        (probability - expected).abs() <= unit,
        "{context}: computed {probability:.10} vs paper {paper}% (tolerance {unit:.1e})"
    );
}

#[test]
fn table1_pbft_all_cells() {
    // (N, safe %, live %, safe and live %) as printed in Table 1, regenerated as
    // one planned sweep through the query API.
    let rows = [
        (4usize, "99.94", "99.94", "99.94"),
        (5, "99.9990", "99.90", "99.90"),
        (7, "99.997", "99.997", "99.997"),
        (8, "99.99993", "99.995", "99.995"),
    ];
    let session = AnalysisSession::new();
    let plan = session
        .plan(
            &Query::new()
                .protocols([ProtocolSpec::Pbft])
                .nodes(rows.iter().map(|&(n, ..)| n))
                .fault_probs([0.01])
                .faults(FaultAxis::Byzantine),
        )
        .expect("well-formed Table 1 sweep");
    // Independent counting models: every cell resolves to the exact engine.
    assert!(plan.engines().iter().all(|&e| e == EngineChoice::Counting));
    let report = plan.execute();
    for (cell, (n, safe, live, both)) in report.cells().iter().zip(rows) {
        assert_eq!(cell.nodes, n);
        let r = &cell.outcome.report;
        assert_paper_percent(r.safe.probability(), safe, &format!("PBFT N={n} safe"));
        assert_paper_percent(r.live.probability(), live, &format!("PBFT N={n} live"));
        assert_paper_percent(
            r.safe_and_live.probability(),
            both,
            &format!("PBFT N={n} safe&live"),
        );
    }
}

#[test]
fn table2_raft_all_cells() {
    // Columns: p = 1%, 2%, 4%, 8% (safe-and-live), rows N = 3, 5, 7, 9 — the full
    // grid as one planned sweep (N-axis outer, p-axis inner in the cell order).
    let rows: [(usize, [&str; 4]); 4] = [
        (3, ["99.97", "99.88", "99.53", "98.18"]),
        (5, ["99.9990", "99.992", "99.94", "99.55"]),
        (7, ["99.99997", "99.9995", "99.992", "99.88"]),
        (9, ["99.999998", "99.99996", "99.9988", "99.97"]),
    ];
    let ps = [0.01, 0.02, 0.04, 0.08];
    let session = AnalysisSession::new();
    let report = session
        .run(
            &Query::new()
                .protocols([ProtocolSpec::Raft])
                .nodes(rows.iter().map(|&(n, _)| n))
                .fault_probs(ps),
        )
        .expect("well-formed Table 2 sweep");
    for (i, (n, cells)) in rows.into_iter().enumerate() {
        for (j, (p, paper)) in ps.iter().zip(cells).enumerate() {
            let cell = report.cell(i * ps.len() + j);
            assert_eq!((cell.nodes, cell.fault_prob), (n, Some(*p)));
            assert_paper_percent(
                cell.outcome.report.safe_and_live.probability(),
                paper,
                &format!("Raft N={n} p={p}"),
            );
        }
    }
}

#[test]
fn raft_quorum_sizes_match_table2() {
    for (n, q) in [(3usize, 2usize), (5, 3), (7, 4), (9, 5)] {
        let m = RaftModel::standard(n);
        assert_eq!(m.q_per(), q);
        assert_eq!(m.q_vc(), q);
    }
}

#[test]
fn claim_three_node_raft_is_three_nines() {
    let report = analyze_auto(
        &RaftModel::standard(3),
        &Deployment::uniform_crash(3, 0.01),
        &Budget::default(),
    )
    .report;
    let nines = report.safe_and_live.nines();
    assert!((3.0..4.0).contains(&nines), "got {nines} nines");
}

#[test]
fn claim_nine_cheap_nodes_match_three_reliable_nodes() {
    let budget = Budget::default();
    let three = analyze_auto(
        &RaftModel::standard(3),
        &Deployment::uniform_crash(3, 0.01),
        &budget,
    )
    .report;
    let nine = analyze_auto(
        &RaftModel::standard(9),
        &Deployment::uniform_crash(9, 0.08),
        &budget,
    )
    .report;
    assert_paper_percent(three.safe_and_live.probability(), "99.97", "3 x 1%");
    assert_paper_percent(nine.safe_and_live.probability(), "99.97", "9 x 8%");
}

#[test]
fn claim_pbft_five_nodes_beat_four_and_seven_on_safety() {
    let points = pbft_sweep(&[4, 5, 7], 0.01);
    let c = compare(&points[0], &points[1]);
    // "improves PBFT safety by 42-60x" (the exact factor at p=1% is ~60x) ...
    assert!(c.safety_improvement > 40.0 && c.safety_improvement < 75.0);
    // "... with a small 1.67x decrease in liveness".
    assert!((c.liveness_degradation - 1.67).abs() < 0.1);
    // "the 5-node system is more safe than a 7-node system".
    assert!(points[1].report.safe.probability() > points[2].report.safe.probability());
    // "... which is 40% more expensive to deploy and operate".
    assert!((points[2].relative_cost / points[1].relative_cost - 1.4).abs() < 1e-9);
}

#[test]
fn claim_heterogeneous_upgrade_and_durability() {
    let (_, analysis) = bench_experiments::claim_heterogeneous();
    // Baseline: 7 nodes at 8% is the Table 2 cell 99.88%.
    assert_paper_percent(
        analysis.baseline_safe_and_live.probability(),
        "99.88",
        "7 x 8% baseline",
    );
    // Upgrading 3 of 7 nodes improves S&L only modestly (paper: ~99.98%).
    assert!(analysis.upgraded_safe_and_live.probability() > 0.9995);
    assert!(analysis.upgraded_safe_and_live.probability() < 0.99999);
    // Requiring a reliable node in the quorum lifts durability to ~four nines or better
    // (paper: 99.994%).
    assert!(analysis.aware_durability.probability() > 0.9999);
    assert!(analysis.aware_durability.probability() > analysis.oblivious_durability.probability());
}

#[test]
fn claim_durability_orders_of_magnitude() {
    let (_, claim) = bench_experiments::claim_durability();
    assert!(
        (claim.p_threshold_exceeded - 0.5).abs() < 0.08,
        "~50% chance of >= 10 faults"
    );
    assert!(
        (claim.p_data_loss - 1e-10).abs() < 1e-11,
        "one in ten billion"
    );
}

#[test]
fn claim_quorum_overkill_sizes() {
    let c = prob_consensus::dynamic_quorum::trigger_quorum_comparison(100, 0.01, 1.0 - 1e-10);
    assert_eq!(c.f_threshold_size, 34, "f-threshold prescribes f+1 = 34");
    assert_eq!(c.probabilistic_size, 5, "five sampled nodes give ten nines");
}

/// Thin re-exports of the bench crate's experiment functions so the integration tests can
/// reuse them without duplicating the setup. (The bench crate is a normal library.)
mod bench_experiments {
    pub use bench::{claim_durability, claim_heterogeneous};
}
