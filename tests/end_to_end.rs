//! Cross-crate pipeline tests: telemetry → fault curves → deployment → analysis →
//! probability-native configuration → end-to-end guarantees.

use fault_model::metrics::HOURS_PER_YEAR;
use fault_model::mode::FaultProfile;
use fault_model::node::{Fleet, NodeSpec};
use fault_model::telemetry::{ClassSpec, TelemetryEstimator, TelemetryGenerator};
use prob_consensus::analyzer::analyze_auto;
use prob_consensus::cost::{cheapest_deployment, default_catalogue, Objective};
use prob_consensus::deployment::Deployment;
use prob_consensus::durability::quorum_durability;
use prob_consensus::dynamic_quorum::smallest_raft_quorums;
use prob_consensus::end_to_end::{end_to_end, RecoveryModel};
use prob_consensus::engine::Budget;
use prob_consensus::heterogeneity::{durability_under_policy, QuorumPolicy};
use prob_consensus::leader::preemptive_replacement_plan;
use prob_consensus::raft_model::RaftModel;
use prob_consensus::timevarying::{first_time_below_target, reliability_trajectory};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

#[test]
fn telemetry_to_guarantee_pipeline() {
    // 1. Estimate fault rates from synthetic telemetry.
    let telemetry = TelemetryGenerator::new(vec![
        ClassSpec::simple("reliable", 10_000, 0.01),
        ClassSpec::simple("spot", 10_000, 0.08),
    ])
    .generate(&mut StdRng::seed_from_u64(1));
    let estimator = TelemetryEstimator::new();
    let reliable_afr = estimator
        .estimate_afr(&telemetry.for_class("reliable"))
        .unwrap()
        .afr;
    let spot_afr = estimator
        .estimate_afr(&telemetry.for_class("spot"))
        .unwrap()
        .afr;
    assert!(spot_afr > 3.0 * reliable_afr);

    // 2. Build deployments from the estimates and compare guarantees.
    let budget = Budget::default();
    let three_reliable = analyze_auto(
        &RaftModel::standard(3),
        &Deployment::uniform_crash(3, reliable_afr),
        &budget,
    )
    .report;
    let nine_spot = analyze_auto(
        &RaftModel::standard(9),
        &Deployment::uniform_crash(9, spot_afr),
        &budget,
    )
    .report;
    // The paper's equivalence survives estimation noise to within ~half a nine.
    assert!(
        (three_reliable.safe_and_live.nines() - nine_spot.safe_and_live.nines()).abs() < 0.5,
        "3 reliable: {} vs 9 spot: {}",
        three_reliable.safe_and_live,
        nine_spot.safe_and_live
    );
}

#[test]
fn fleet_curves_drive_time_varying_guarantees_and_replacement_plans() {
    use fault_model::curve::WeibullCurve;
    let fleet: Fleet = (0..5)
        .map(|i| {
            NodeSpec::with_constant_crash(i, 0.0, HOURS_PER_YEAR)
                .with_crash_curve(Arc::new(WeibullCurve::new(3.0, 70_000.0)))
                .with_age(20_000.0 + 5_000.0 * i as f64)
        })
        .collect();
    let trajectory = reliability_trajectory(
        &RaftModel::standard(5),
        &fleet,
        HOURS_PER_YEAR / 4.0,
        6.0 * HOURS_PER_YEAR,
        HOURS_PER_YEAR / 2.0,
    );
    let dip = first_time_below_target(&trajectory, 4.0);
    assert!(
        dip.is_some(),
        "an aging fleet eventually drops below four nines"
    );
    // The replacement planner flags the oldest node no later than the dip.
    let plans = preemptive_replacement_plan(
        &fleet,
        HOURS_PER_YEAR / 4.0,
        6.0 * HOURS_PER_YEAR,
        0.05,
        HOURS_PER_YEAR / 4.0,
    );
    assert!(!plans.is_empty());
    assert_eq!(
        plans[0].node,
        fault_model::node::NodeId(4),
        "oldest node first"
    );
}

#[test]
fn cost_search_and_dynamic_quorums_meet_their_targets() {
    let best = cheapest_deployment(
        &default_catalogue(),
        11,
        4.0,
        Objective::Cost,
        RaftModel::standard,
    )
    .expect("a feasible deployment exists for four nines");
    assert!(best.report.safe_and_live.meets(4.0));

    let deployment = Deployment::uniform_crash(best.n, best.instance.fault_probability);
    let sizing = smallest_raft_quorums(&deployment, 4.0).expect("dynamic sizing succeeds");
    assert!(sizing.model.quorums_intersect());
    assert!(sizing.achieved >= 0.9999);
    // The data-path quorum never needs to exceed a majority.
    assert!(sizing.model.q_per() <= best.n / 2 + 1);
}

#[test]
fn heterogeneous_policies_feed_end_to_end_guarantees() {
    let mut profiles = vec![FaultProfile::crash_only(0.08); 4];
    profiles.extend(vec![FaultProfile::crash_only(0.01); 3]);
    let deployment = Deployment::from_profiles(profiles);
    let protocol = analyze_auto(&RaftModel::standard(7), &deployment, &Budget::default()).report;

    // Durability of the actual quorum the policy selects.
    let aware = durability_under_policy(&deployment, 4, QuorumPolicy::RequireReliable(1));
    let oblivious = durability_under_policy(&deployment, 4, QuorumPolicy::ObliviousWorstCase);
    assert!(aware.probability() > oblivious.probability());

    // End-to-end: availability beats raw liveness thanks to fast recovery; durability
    // follows the quorum placement.
    let recovery = RecoveryModel::default_annual();
    let e2e_aware = end_to_end(&protocol, &recovery, aware);
    let e2e_oblivious = end_to_end(&protocol, &recovery, oblivious);
    assert!(e2e_aware.durability.probability() > e2e_oblivious.durability.probability());
    assert!(e2e_aware.availability.nines() > protocol.live.nines());

    // Sanity: the quorum_durability helper agrees with the policy module for an explicit
    // member list (three flaky + one reliable node).
    let explicit = quorum_durability(&deployment, &[0, 1, 2, 4]);
    assert!((explicit.probability() - aware.probability()).abs() < 1e-12);
}

#[test]
fn markov_mttdl_and_window_analysis_tell_a_consistent_story() {
    // A 5-node group tolerating 2 simultaneous failures, lambda from a 8% AFR, repairs
    // within ~24h on average.
    let lambda = fault_model::metrics::afr_to_hourly_rate(0.08);
    let mttdl = prob_consensus::durability::consensus_mttdl(5, lambda, 1.0 / 24.0, 2);
    // With repair the mean time to losing the quorum should far exceed a decade.
    assert!(mttdl > 10.0 * HOURS_PER_YEAR, "MTTDL {mttdl} hours");
    let availability =
        prob_consensus::durability::steady_state_quorum_availability(5, lambda, 1.0 / 24.0, 2);
    assert!(availability > 0.999999);
}
