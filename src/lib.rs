//! Umbrella crate for the probabilistic-consensus workspace.
//!
//! This package only hosts the repository-level examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); the functionality lives in the member
//! crates, re-exported here for convenience:
//!
//! * [`fault_model`] — fault curves, failure modes, Markov reliability models, telemetry.
//! * [`quorum`] — quorum systems and committee sampling.
//! * [`consensus_sim`] — the deterministic discrete-event simulator.
//! * [`consensus_protocols`] — executable Raft and PBFT plus harnesses.
//! * [`prob_consensus`] — the probabilistic reliability analysis and the
//!   probability-native mechanisms (the paper's primary contribution).

pub use consensus_protocols;
pub use consensus_sim;
pub use fault_model;
pub use prob_consensus;
pub use quorum;
